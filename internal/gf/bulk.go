package gf

import "unsafe"

// Bulk kernels. MulSlice and AddMulSlice are the inner loops of every
// matrix product, elimination step and packet combination in the
// repository. They are layered:
//
//   - a portable generic layer (this file): coefficient 1 degenerates to a
//     word-wide XOR; GF(2^8) uses the full 256x256 product table (one
//     unconditional L1 lookup per symbol); GF(2^16) builds a
//     per-coefficient split product row (512 entries, 1 KiB) for long
//     slices and stays on branchy log/exp for short ones. This layer is
//     the reference implementation every other layer is differential-
//     tested against.
//   - a nibble-split table layer (nibble.go): per-coefficient 16-entry
//     tables sized so one table is one SIMD shuffle register.
//   - an arch-dispatch layer (bulk_amd64.go / bulk_arm64.go /
//     bulk_generic.go, `purego` escape hatch): pickKernels, run once at
//     field construction, decides whether the arch's block kernels run;
//     the arch* shim functions are called directly (never through
//     function pointers) so their //go:noescape declarations keep every
//     table and scratch argument on the stack.
//
// The batched entry points (AddMulSlices, EliminateRows) thread one
// nibCache through a run of rows so repeated coefficients build their
// tables once — and AddMulSlices additionally tiles its terms into fused
// multi-source passes (bulk_amd64.s strip kernels) so the accumulator is
// loaded and stored once per 2-4 terms instead of once per term.

const (
	wordBytes = 8
	// bulkMin16 is the GF(2^16) slice length above which building the
	// 512-entry per-coefficient product row pays for itself on the generic
	// layer (tuned with BenchmarkAddMulSlice; the crossover is well under
	// one cache line of table build per eight symbols processed).
	bulkMin16 = 96
	// nibMin16 / nibMin8 are the slice lengths (in symbols) above which
	// the accelerated nibble-block kernels pay for their per-coefficient
	// table build. Below them the generic layer wins (tuned with the
	// BenchmarkAddMulSlice kernel matrix; for GF(2^16) the crossover
	// lands on bulkMin16, so the branchy log/exp path keeps exactly the
	// range it kept before and the block kernels replace the product-row
	// regime).
	nibMin16 = 96
	nibMin8  = 96
	// kernelBlockBytes is the unit the single-source arch block kernels
	// process; the routing layer hands them whole blocks and finishes
	// tails with the portable nibble loops over the same tables.
	kernelBlockBytes = 32
	// fusedStripBytes is the unit the fused multi-source kernels process:
	// four blocks, kept in four accumulator registers across all terms of
	// a pass, so the GF(2^16) kernels' per-term table broadcasts amortize
	// over 128 accumulator bytes.
	fusedStripBytes = 128
	// fusedWidth is the widest fused pass (terms per accumulator walk).
	fusedWidth = 4
	// fusedMin8 / fusedMin16 are the slice lengths (in symbols) above
	// which AddMulSlices tiles into fused passes: at least one full strip,
	// and for GF(2^16) the same table-build crossover as the single-source
	// kernels (one strip plus a portable tail already wins there).
	fusedMin8  = fusedStripBytes
	fusedMin16 = nibMin16
)

// kernels is the arch-dispatch decision made once per field: the backend
// name (for diagnostics and benchmark labels) and whether the arch* block
// kernel shims may be called.
type kernels struct {
	name  string
	accel bool
}

// nibCache carries built nibble tables across the rows of one batched
// kernel call, so a run of identical coefficients builds its tables once.
type nibCache struct {
	c     uint16
	valid bool
	t8    nib8
	t16   nib16
}

// as8 and as16 reinterpret a symbol slice at its native width for the
// block kernels. Callers guard on f.size so the width always matches E's
// underlying type.
func as8[E Elem](s []E) []uint8 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint8)(unsafe.Pointer(&s[0])), len(s))
}

func as16[E Elem](s []E) []uint16 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&s[0])), len(s))
}

// xorSlice computes dst[i] ^= src[i]. The middle of the two slices is
// processed as 64-bit words when both have the same alignment remainder;
// the (at most 7-byte) head and tail fall back to element operations.
func xorSlice[E Elem](dst, src []E) {
	n := len(dst)
	i := 0
	if n > 0 {
		elem := int(unsafe.Sizeof(dst[0]))
		if n*elem >= 2*wordBytes {
			dp := uintptr(unsafe.Pointer(&dst[0]))
			sp := uintptr(unsafe.Pointer(&src[0]))
			if dp%wordBytes == sp%wordBytes {
				// Element alignment guarantees the byte skip divides
				// evenly into elements (elem is 1 or 2 and dp%elem == 0).
				head := int((wordBytes-dp%wordBytes)%wordBytes) / elem
				for ; i < head; i++ {
					dst[i] ^= src[i]
				}
				words := (n - head) * elem / wordBytes
				dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[head])), words)
				sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[head])), words)
				for w := range dw {
					dw[w] ^= sw[w]
				}
				i = head + words*wordBytes/elem
			}
		}
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// productRow fills low[b] = c*b and high[b] = c*(b<<8), the split product
// row used by the GF(2^16) generic layer. Only valid on fields with at
// least 2^16 elements.
func (f *Field[E]) productRow(low, high *[256]E, c E) {
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	low[0], high[0] = 0, 0
	for b := 1; b < 256; b++ {
		low[b] = exp[lc+int(log[b])]
		high[b] = exp[lc+int(log[b<<8])]
	}
}

// AddMulSlice computes dst[i] ^= c * src[i] for every index. It is the
// inner kernel of all matrix products and packet combinations. dst and src
// must have the same length and must not overlap unless c is 0 or 1.
func (f *Field[E]) AddMulSlice(dst, src []E, c E) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	f.addMul(dst, src, c, nil)
}

// addMul routes one dst ^= c*src update to the widest applicable layer.
// nc, when non-nil, caches nibble tables across calls (the batched entry
// points); when nil a short-lived cache is used only if a block kernel
// runs, so the short-slice paths never pay for zeroing it.
func (f *Field[E]) addMul(dst, src []E, c E, nc *nibCache) {
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	n := len(dst)
	if f.size > 256 {
		if f.kern.accel && n >= nibMin16 {
			var local nibCache
			if nc == nil {
				nc = &local
			}
			if !nc.valid || nc.c != uint16(c) {
				f.buildNib16(&nc.t16, c)
				nc.c, nc.valid = uint16(c), true
			}
			d, s := as16(dst), as16(src)
			off := 0
			if planar16 {
				// Whole 64-word strips go through the byte-planar
				// kernel: tables stay resident for the whole call and
				// each VPSHUFB covers 32 symbols instead of 16.
				if strips := n / (fusedStripBytes / 2); strips > 0 {
					archAddMulPlanar16(&d[0], &s[0], strips, &nc.t16)
					off = strips * (fusedStripBytes / 2)
				}
			}
			blocks := (n - off) / (kernelBlockBytes / 2)
			if blocks > 0 {
				archAddMul16(&d[off], &s[off], blocks, &nc.t16)
			}
			head := off + blocks*(kernelBlockBytes/2)
			addMulNib16(d[head:], s[head:], &nc.t16)
			return
		}
	} else if f.kern.accel && n >= nibMin8 {
		var local nibCache
		if nc == nil {
			nc = &local
		}
		if !nc.valid || nc.c != uint16(c) {
			f.buildNib8(&nc.t8, c)
			nc.c, nc.valid = uint16(c), true
		}
		d, s := as8(dst), as8(src)
		blocks := n / kernelBlockBytes
		head := blocks * kernelBlockBytes
		archAddMul8(&d[0], &s[0], blocks, &nc.t8)
		addMulNib8(d[head:], s[head:], &nc.t8)
		return
	}
	f.addMulGeneric(dst, src, c)
}

// addMulGeneric is the generic layer of AddMulSlice for c outside {0, 1}.
func (f *Field[E]) addMulGeneric(dst, src []E, c E) {
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, s := range src {
			dst[i] ^= row[s]
		}
		return
	}
	if len(src) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, s := range src {
			v := int(s)
			dst[i] ^= low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+int(log[s])]
		}
	}
}

// AddMulSliceGeneric is AddMulSlice pinned to the portable generic layer,
// bypassing any accelerated kernel the field's dispatch selected. It is
// the reference implementation the differential and fuzz tests compare
// against, and the baseline arm of the kernel benchmark matrix.
func (f *Field[E]) AddMulSliceGeneric(dst, src []E, c E) {
	if len(dst) != len(src) {
		panic("gf: AddMulSliceGeneric length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	f.addMulGeneric(dst, src, c)
}

// MulSlice computes dst[i] = c * dst[i] for every index.
func (f *Field[E]) MulSlice(dst []E, c E) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		return
	}
	n := len(dst)
	if f.size > 256 {
		if f.kern.accel && n >= nibMin16 {
			var t nib16
			f.buildNib16(&t, c)
			d := as16(dst)
			blocks := n / (kernelBlockBytes / 2)
			head := blocks * (kernelBlockBytes / 2)
			archMul16(&d[0], &d[0], blocks, &t)
			mulSliceNib16(d[head:], &t)
			return
		}
	} else if f.kern.accel && n >= nibMin8 {
		var t nib8
		f.buildNib8(&t, c)
		d := as8(dst)
		blocks := n / kernelBlockBytes
		head := blocks * kernelBlockBytes
		archMul8(&d[0], &d[0], blocks, &t)
		mulSliceNib8(d[head:], &t)
		return
	}
	f.mulSliceGeneric(dst, c)
}

// mulSliceGeneric is the generic layer of MulSlice for c outside {0, 1}.
func (f *Field[E]) mulSliceGeneric(dst []E, c E) {
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, d := range dst {
			dst[i] = row[d]
		}
		return
	}
	if len(dst) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, d := range dst {
			v := int(d)
			dst[i] = low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, d := range dst {
		if d != 0 {
			dst[i] = exp[lc+int(log[d])]
		}
	}
}

// MulSliceGeneric is MulSlice pinned to the portable generic layer; see
// AddMulSliceGeneric.
func (f *Field[E]) MulSliceGeneric(dst []E, c E) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		return
	}
	f.mulSliceGeneric(dst, c)
}

// AddMulSlices computes dst[i] ^= Σ_j cs[j] * srcs[j][i]: one accumulator
// updated by many (coefficient, row) terms — the shape of every y/z/s
// packet combination, mat-vec accumulation and panel-elimination update in
// the protocol. Zero coefficients are skipped and unit coefficients
// degenerate to XOR (or fuse through an identity table when a fused pass
// is running anyway). On accelerated fields with long slices the terms
// are tiled into fused multi-source passes — groups of 4, then 2, then 1
// — so the accumulator is loaded and stored once per group instead of
// once per term; repeated coefficients share their tables both within a
// pass and across passes via the nibble cache. Every srcs row must have
// dst's length, and no row may partially overlap dst.
func (f *Field[E]) AddMulSlices(dst []E, srcs [][]E, cs []E) {
	if len(srcs) != len(cs) {
		panic("gf: AddMulSlices coefficient count mismatch")
	}
	for _, src := range srcs {
		if len(src) != len(dst) {
			panic("gf: AddMulSlices row length mismatch")
		}
	}
	n := len(dst)
	if n == 0 || len(cs) == 0 {
		return
	}
	countDispatch(&dispatchSlices)
	if f.kern.accel {
		if f.size > 256 {
			if n >= fusedMin16 {
				countDispatch(&dispatchSlicesFused)
				f.fusedAddMulSlices16(dst, srcs, cs)
				return
			}
		} else if n >= fusedMin8 {
			countDispatch(&dispatchSlicesFused)
			f.fusedAddMulSlices8(dst, srcs, cs)
			return
		}
	}
	var nc nibCache
	for j, src := range srcs {
		f.addMul(dst, src, cs[j], &nc)
	}
}

// AddMulSlicesPerTerm is AddMulSlices pinned to the per-term dispatch
// path: one full accumulator walk per (coefficient, row) term, tables
// shared across terms via the nibble cache but never fused. It is the
// reference arm the fused routing is benchmarked against
// (speedup_vs_per_term in BENCH_gf.json) and a differential anchor for
// the fused tests.
func (f *Field[E]) AddMulSlicesPerTerm(dst []E, srcs [][]E, cs []E) {
	if len(srcs) != len(cs) {
		panic("gf: AddMulSlicesPerTerm coefficient count mismatch")
	}
	var nc nibCache
	for j, src := range srcs {
		if len(src) != len(dst) {
			panic("gf: AddMulSlicesPerTerm row length mismatch")
		}
		f.addMul(dst, src, cs[j], &nc)
	}
}

// fusedAddMulSlices16 tiles a GF(2^16) combination into fused strip
// passes. Terms with zero coefficients are dropped while gathering;
// everything else — unit coefficients included — joins a pass of up to
// fusedWidth terms. Each pass walks the accumulator once: whole strips in
// the arch kernel, the tail in one portable fused nibble loop.
func (f *Field[E]) fusedAddMulSlices16(dst []E, srcs [][]E, cs []E) {
	d := as16(dst)
	n := len(d)
	strips := n * 2 / fusedStripBytes
	head := strips * (fusedStripBytes / 2)
	var (
		ts [fusedWidth]nib16
		tc [fusedWidth]uint16
		sp [fusedWidth]*uint16
		tl [fusedWidth][]uint16
		nc nibCache
	)
	j := 0
	for j < len(cs) {
		k := 0
		for j < len(cs) && k < fusedWidth {
			c := uint16(cs[j])
			src := srcs[j]
			j++
			if c == 0 {
				continue
			}
			s := as16(src)
			built := false
			for p := 0; p < k; p++ {
				if tc[p] == c {
					ts[k] = ts[p]
					built = true
					break
				}
			}
			if !built && nc.valid && nc.c == c {
				ts[k] = nc.t16
				built = true
			}
			if !built {
				f.buildNib16(&ts[k], E(c))
				nc.t16, nc.c, nc.valid = ts[k], c, true
			}
			tc[k] = c
			sp[k] = &s[0]
			tl[k] = s[head:]
			k++
		}
		switch k {
		case 0:
			// Only zero coefficients gathered; nothing to apply.
		case 1:
			if strips > 0 {
				if planar16 {
					archAddMulPlanar16(&d[0], sp[0], strips, &ts[0])
				} else {
					archAddMul16(&d[0], sp[0], strips*fusedStripBytes/kernelBlockBytes, &ts[0])
				}
			}
			addMulNib16(d[head:], tl[0], &ts[0])
		case 2:
			if strips > 0 {
				archAddMul2x16(&d[0], &sp[0], strips, &ts[0])
			}
			addMulNib16x2(d[head:], tl[0], tl[1], &ts)
		case 3:
			// A 2-term fused pass plus one single-source pass: cheaper than
			// shuffling a dead zero-coefficient fourth term through the
			// 4-term kernel.
			if strips > 0 {
				archAddMul2x16(&d[0], &sp[0], strips, &ts[0])
				if planar16 {
					archAddMulPlanar16(&d[0], sp[2], strips, &ts[2])
				} else {
					archAddMul16(&d[0], sp[2], strips*fusedStripBytes/kernelBlockBytes, &ts[2])
				}
			}
			addMulNib16x2(d[head:], tl[0], tl[1], &ts)
			addMulNib16(d[head:], tl[2], &ts[2])
		case 4:
			if strips > 0 {
				archAddMul4x16(&d[0], &sp[0], strips, &ts[0])
			}
			addMulNib16x4(d[head:], tl[0], tl[1], tl[2], tl[3], &ts)
		}
	}
}

// fusedAddMulSlices8 is fusedAddMulSlices16 for GF(2^8).
func (f *Field[E]) fusedAddMulSlices8(dst []E, srcs [][]E, cs []E) {
	d := as8(dst)
	n := len(d)
	strips := n / fusedStripBytes
	head := strips * fusedStripBytes
	var (
		ts [fusedWidth]nib8
		tc [fusedWidth]uint16
		sp [fusedWidth]*uint8
		tl [fusedWidth][]uint8
		nc nibCache
	)
	j := 0
	for j < len(cs) {
		k := 0
		for j < len(cs) && k < fusedWidth {
			c := uint16(cs[j])
			src := srcs[j]
			j++
			if c == 0 {
				continue
			}
			s := as8(src)
			built := false
			for p := 0; p < k; p++ {
				if tc[p] == c {
					ts[k] = ts[p]
					built = true
					break
				}
			}
			if !built && nc.valid && nc.c == c {
				ts[k] = nc.t8
				built = true
			}
			if !built {
				f.buildNib8(&ts[k], E(c))
				nc.t8, nc.c, nc.valid = ts[k], c, true
			}
			tc[k] = c
			sp[k] = &s[0]
			tl[k] = s[head:]
			k++
		}
		switch k {
		case 0:
		case 1:
			if strips > 0 {
				archAddMul8(&d[0], sp[0], strips*fusedStripBytes/kernelBlockBytes, &ts[0])
			}
			addMulNib8(d[head:], tl[0], &ts[0])
		case 2:
			if strips > 0 {
				archAddMul2x8(&d[0], &sp[0], strips, &ts[0])
			}
			addMulNib8x2(d[head:], tl[0], tl[1], &ts)
		case 3:
			if strips > 0 {
				archAddMul2x8(&d[0], &sp[0], strips, &ts[0])
				archAddMul8(&d[0], sp[2], strips*fusedStripBytes/kernelBlockBytes, &ts[2])
			}
			addMulNib8x2(d[head:], tl[0], tl[1], &ts)
			addMulNib8(d[head:], tl[2], &ts[2])
		case 4:
			if strips > 0 {
				archAddMul4x8(&d[0], &sp[0], strips, &ts[0])
			}
			addMulNib8x4(d[head:], tl[0], tl[1], tl[2], tl[3], &ts)
		}
	}
}

// EliminateRows computes dsts[j][i] ^= cs[j] * src[i] for every row j: the
// multi-row elimination update (subtract multiples of one pivot row from
// many target rows) that Gaussian elimination performs within a panel.
// The pivot row stays hot across all updates and the nibble-table cache is
// shared, so repeated coefficients build their tables once. Every dsts row
// must have src's length.
//
// Accumulators are distinct here, so the fused multi-source kernels do
// not apply; the bulk of elimination work instead reaches them through
// the matrix package's panel elimination, which presents each target row
// as one multi-term AddMulSlices call over several pivot rows.
func (f *Field[E]) EliminateRows(dsts [][]E, src []E, cs []E) {
	if len(dsts) != len(cs) {
		panic("gf: EliminateRows coefficient count mismatch")
	}
	countDispatch(&dispatchEliminate)
	var nc nibCache
	for j, d := range dsts {
		if len(d) != len(src) {
			panic("gf: EliminateRows row length mismatch")
		}
		f.addMul(d, src, cs[j], &nc)
	}
}
