package gf

import "unsafe"

// Bulk kernels. MulSlice and AddMulSlice are the inner loops of every
// matrix product, elimination step and packet combination in the
// repository, so they use the classic Reed-Solomon idiom instead of a
// log/exp lookup per symbol:
//
//   - coefficient 1 degenerates to a plain XOR, performed 64 bits at a
//     time over the co-aligned middle of the two slices;
//   - GF(2^8) keeps a full 256x256 product table (64 KiB, built once with
//     the field), so c*s is one unconditional L1 lookup;
//   - GF(2^16) cannot afford the full table (8 GiB), so for long slices
//     the kernels build a per-coefficient product row split into low- and
//     high-byte halves (512 entries, 1 KiB): c*s = low[s&0xff] ^ high[s>>8].
//     Short slices stay on the branchy log/exp path, which beats paying
//     the 512-multiplication table build.

const (
	wordBytes = 8
	// bulkMin16 is the GF(2^16) slice length above which building the
	// 512-entry per-coefficient product row pays for itself (tuned with
	// BenchmarkAddMulSlice; the crossover is well under one cache line
	// of table build per eight symbols processed).
	bulkMin16 = 96
)

// xorSlice computes dst[i] ^= src[i]. The middle of the two slices is
// processed as 64-bit words when both have the same alignment remainder;
// the (at most 7-byte) head and tail fall back to element operations.
func xorSlice[E Elem](dst, src []E) {
	n := len(dst)
	i := 0
	if n > 0 {
		elem := int(unsafe.Sizeof(dst[0]))
		if n*elem >= 2*wordBytes {
			dp := uintptr(unsafe.Pointer(&dst[0]))
			sp := uintptr(unsafe.Pointer(&src[0]))
			if dp%wordBytes == sp%wordBytes {
				// Element alignment guarantees the byte skip divides
				// evenly into elements (elem is 1 or 2 and dp%elem == 0).
				head := int((wordBytes-dp%wordBytes)%wordBytes) / elem
				for ; i < head; i++ {
					dst[i] ^= src[i]
				}
				words := (n - head) * elem / wordBytes
				dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[head])), words)
				sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[head])), words)
				for w := range dw {
					dw[w] ^= sw[w]
				}
				i = head + words*wordBytes/elem
			}
		}
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// productRow fills low[b] = c*b and high[b] = c*(b<<8), the split product
// row used by the GF(2^16) bulk path. Only valid on fields with at least
// 2^16 elements.
func (f *Field[E]) productRow(low, high *[256]E, c E) {
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	low[0], high[0] = 0, 0
	for b := 1; b < 256; b++ {
		low[b] = exp[lc+int(log[b])]
		high[b] = exp[lc+int(log[b<<8])]
	}
}

// AddMulSlice computes dst[i] ^= c * src[i] for every index. It is the
// inner kernel of all matrix products and packet combinations. dst and src
// must have the same length.
func (f *Field[E]) AddMulSlice(dst, src []E, c E) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, s := range src {
			dst[i] ^= row[s]
		}
		return
	}
	if len(src) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, s := range src {
			v := int(s)
			dst[i] ^= low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+int(log[s])]
		}
	}
}

// MulSlice computes dst[i] = c * dst[i] for every index.
func (f *Field[E]) MulSlice(dst []E, c E) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		return
	}
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, d := range dst {
			dst[i] = row[d]
		}
		return
	}
	if len(dst) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, d := range dst {
			v := int(d)
			dst[i] = low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, d := range dst {
		if d != 0 {
			dst[i] = exp[lc+int(log[d])]
		}
	}
}
