package gf

import "unsafe"

// Bulk kernels. MulSlice and AddMulSlice are the inner loops of every
// matrix product, elimination step and packet combination in the
// repository. They are layered:
//
//   - a portable generic layer (this file): coefficient 1 degenerates to a
//     word-wide XOR; GF(2^8) uses the full 256x256 product table (one
//     unconditional L1 lookup per symbol); GF(2^16) builds a
//     per-coefficient split product row (512 entries, 1 KiB) for long
//     slices and stays on branchy log/exp for short ones. This layer is
//     the reference implementation every other layer is differential-
//     tested against.
//   - a nibble-split table layer (nibble.go): per-coefficient 16-entry
//     tables sized so one table is one SIMD shuffle register.
//   - an arch-dispatch layer (bulk_amd64.go / bulk_arm64.go /
//     bulk_generic.go, `purego` escape hatch): pickKernels, run once at
//     field construction, selects the widest block kernel the CPU
//     supports; nil function pointers mean "stay portable".
//
// The batched entry points (AddMulSlices, EliminateRows) thread one
// nibCache through a run of rows so repeated coefficients build their
// tables once instead of per call.

const (
	wordBytes = 8
	// bulkMin16 is the GF(2^16) slice length above which building the
	// 512-entry per-coefficient product row pays for itself on the generic
	// layer (tuned with BenchmarkAddMulSlice; the crossover is well under
	// one cache line of table build per eight symbols processed).
	bulkMin16 = 96
	// nibMin16 / nibMin8 are the slice lengths (in symbols) above which
	// the accelerated nibble-block kernels pay for their per-coefficient
	// table build. Below them the generic layer wins (tuned with the
	// BenchmarkAddMulSlice kernel matrix; for GF(2^16) the crossover
	// lands on bulkMin16, so the branchy log/exp path keeps exactly the
	// range it kept before and the block kernels replace the product-row
	// regime).
	nibMin16 = 96
	nibMin8  = 96
	// kernelBlockBytes is the unit the arch block kernels process; the
	// routing layer hands them whole blocks and finishes tails with the
	// portable nibble loops over the same tables.
	kernelBlockBytes = 32
)

// kernels is the arch-dispatch surface: the block-kernel function pointers
// an architecture backend provides. All pointers may be nil (no
// acceleration for that shape); a non-nil kernel processes exactly
// blocks*kernelBlockBytes bytes using prebuilt nibble tables.
type kernels struct {
	name     string
	addMul8  func(dst, src *uint8, blocks int, t *nib8)
	mul8     func(dst, src *uint8, blocks int, t *nib8)
	addMul16 func(dst, src *uint16, blocks int, t *nib16)
	mul16    func(dst, src *uint16, blocks int, t *nib16)
}

// nibCache carries built nibble tables across the rows of one batched
// kernel call, so a run of identical coefficients builds its tables once.
type nibCache struct {
	c     uint16
	valid bool
	t8    nib8
	t16   nib16
}

// as8 and as16 reinterpret a symbol slice at its native width for the
// block kernels. Callers guard on f.size so the width always matches E's
// underlying type.
func as8[E Elem](s []E) []uint8 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint8)(unsafe.Pointer(&s[0])), len(s))
}

func as16[E Elem](s []E) []uint16 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint16)(unsafe.Pointer(&s[0])), len(s))
}

// xorSlice computes dst[i] ^= src[i]. The middle of the two slices is
// processed as 64-bit words when both have the same alignment remainder;
// the (at most 7-byte) head and tail fall back to element operations.
func xorSlice[E Elem](dst, src []E) {
	n := len(dst)
	i := 0
	if n > 0 {
		elem := int(unsafe.Sizeof(dst[0]))
		if n*elem >= 2*wordBytes {
			dp := uintptr(unsafe.Pointer(&dst[0]))
			sp := uintptr(unsafe.Pointer(&src[0]))
			if dp%wordBytes == sp%wordBytes {
				// Element alignment guarantees the byte skip divides
				// evenly into elements (elem is 1 or 2 and dp%elem == 0).
				head := int((wordBytes-dp%wordBytes)%wordBytes) / elem
				for ; i < head; i++ {
					dst[i] ^= src[i]
				}
				words := (n - head) * elem / wordBytes
				dw := unsafe.Slice((*uint64)(unsafe.Pointer(&dst[head])), words)
				sw := unsafe.Slice((*uint64)(unsafe.Pointer(&src[head])), words)
				for w := range dw {
					dw[w] ^= sw[w]
				}
				i = head + words*wordBytes/elem
			}
		}
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// productRow fills low[b] = c*b and high[b] = c*(b<<8), the split product
// row used by the GF(2^16) generic layer. Only valid on fields with at
// least 2^16 elements.
func (f *Field[E]) productRow(low, high *[256]E, c E) {
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	low[0], high[0] = 0, 0
	for b := 1; b < 256; b++ {
		low[b] = exp[lc+int(log[b])]
		high[b] = exp[lc+int(log[b<<8])]
	}
}

// AddMulSlice computes dst[i] ^= c * src[i] for every index. It is the
// inner kernel of all matrix products and packet combinations. dst and src
// must have the same length and must not overlap unless c is 0 or 1.
func (f *Field[E]) AddMulSlice(dst, src []E, c E) {
	if len(dst) != len(src) {
		panic("gf: AddMulSlice length mismatch")
	}
	f.addMul(dst, src, c, nil)
}

// addMul routes one dst ^= c*src update to the widest applicable layer.
// nc, when non-nil, caches nibble tables across calls (the batched entry
// points); when nil a short-lived cache is used only if a block kernel
// runs, so the short-slice paths never pay for zeroing it.
func (f *Field[E]) addMul(dst, src []E, c E, nc *nibCache) {
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	n := len(dst)
	if f.size > 256 {
		if k := f.kern.addMul16; k != nil && n >= nibMin16 {
			var local nibCache
			if nc == nil {
				nc = &local
			}
			if !nc.valid || nc.c != uint16(c) {
				f.buildNib16(&nc.t16, c)
				nc.c, nc.valid = uint16(c), true
			}
			d, s := as16(dst), as16(src)
			blocks := n / (kernelBlockBytes / 2)
			head := blocks * (kernelBlockBytes / 2)
			k(&d[0], &s[0], blocks, &nc.t16)
			addMulNib16(d[head:], s[head:], &nc.t16)
			return
		}
	} else if k := f.kern.addMul8; k != nil && n >= nibMin8 {
		var local nibCache
		if nc == nil {
			nc = &local
		}
		if !nc.valid || nc.c != uint16(c) {
			f.buildNib8(&nc.t8, c)
			nc.c, nc.valid = uint16(c), true
		}
		d, s := as8(dst), as8(src)
		blocks := n / kernelBlockBytes
		head := blocks * kernelBlockBytes
		k(&d[0], &s[0], blocks, &nc.t8)
		addMulNib8(d[head:], s[head:], &nc.t8)
		return
	}
	f.addMulGeneric(dst, src, c)
}

// addMulGeneric is the generic layer of AddMulSlice for c outside {0, 1}.
func (f *Field[E]) addMulGeneric(dst, src []E, c E) {
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, s := range src {
			dst[i] ^= row[s]
		}
		return
	}
	if len(src) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, s := range src {
			v := int(s)
			dst[i] ^= low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+int(log[s])]
		}
	}
}

// AddMulSliceGeneric is AddMulSlice pinned to the portable generic layer,
// bypassing any accelerated kernel the field's dispatch selected. It is
// the reference implementation the differential and fuzz tests compare
// against, and the baseline arm of the kernel benchmark matrix.
func (f *Field[E]) AddMulSliceGeneric(dst, src []E, c E) {
	if len(dst) != len(src) {
		panic("gf: AddMulSliceGeneric length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		xorSlice(dst, src)
		return
	}
	f.addMulGeneric(dst, src, c)
}

// MulSlice computes dst[i] = c * dst[i] for every index.
func (f *Field[E]) MulSlice(dst []E, c E) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		return
	}
	n := len(dst)
	if f.size > 256 {
		if k := f.kern.mul16; k != nil && n >= nibMin16 {
			var t nib16
			f.buildNib16(&t, c)
			d := as16(dst)
			blocks := n / (kernelBlockBytes / 2)
			head := blocks * (kernelBlockBytes / 2)
			k(&d[0], &d[0], blocks, &t)
			mulSliceNib16(d[head:], &t)
			return
		}
	} else if k := f.kern.mul8; k != nil && n >= nibMin8 {
		var t nib8
		f.buildNib8(&t, c)
		d := as8(dst)
		blocks := n / kernelBlockBytes
		head := blocks * kernelBlockBytes
		k(&d[0], &d[0], blocks, &t)
		mulSliceNib8(d[head:], &t)
		return
	}
	f.mulSliceGeneric(dst, c)
}

// mulSliceGeneric is the generic layer of MulSlice for c outside {0, 1}.
func (f *Field[E]) mulSliceGeneric(dst []E, c E) {
	if f.mul8 != nil {
		row := f.mul8[int(c)<<8 : int(c)<<8+256]
		for i, d := range dst {
			dst[i] = row[d]
		}
		return
	}
	if len(dst) >= bulkMin16 {
		var low, high [256]E
		f.productRow(&low, &high, c)
		for i, d := range dst {
			v := int(d)
			dst[i] = low[v&0xff] ^ high[v>>8]
		}
		return
	}
	lc := int(f.log[c])
	exp, log := f.exp, f.log
	for i, d := range dst {
		if d != 0 {
			dst[i] = exp[lc+int(log[d])]
		}
	}
}

// MulSliceGeneric is MulSlice pinned to the portable generic layer; see
// AddMulSliceGeneric.
func (f *Field[E]) MulSliceGeneric(dst []E, c E) {
	switch c {
	case 0:
		clear(dst)
		return
	case 1:
		return
	}
	f.mulSliceGeneric(dst, c)
}

// AddMulSlices computes dst[i] ^= Σ_j cs[j] * srcs[j][i]: one accumulator
// updated by many (coefficient, row) terms — the shape of every y/z/s
// packet combination and mat-vec accumulation in the protocol. Zero
// coefficients are skipped, unit coefficients degenerate to XOR, and the
// nibble-table cache is shared across terms so repeated coefficients build
// their tables once. Every srcs row must have dst's length.
func (f *Field[E]) AddMulSlices(dst []E, srcs [][]E, cs []E) {
	if len(srcs) != len(cs) {
		panic("gf: AddMulSlices coefficient count mismatch")
	}
	var nc nibCache
	for j, src := range srcs {
		if len(src) != len(dst) {
			panic("gf: AddMulSlices row length mismatch")
		}
		f.addMul(dst, src, cs[j], &nc)
	}
}

// EliminateRows computes dsts[j][i] ^= cs[j] * src[i] for every row j: the
// multi-row elimination update (subtract multiples of one pivot row from
// many target rows) that Gaussian elimination performs per column. The
// pivot row stays hot across all updates and the nibble-table cache is
// shared, so repeated coefficients build their tables once. Every dsts row
// must have src's length.
func (f *Field[E]) EliminateRows(dsts [][]E, src []E, cs []E) {
	if len(dsts) != len(cs) {
		panic("gf: EliminateRows coefficient count mismatch")
	}
	var nc nibCache
	for j, d := range dsts {
		if len(d) != len(src) {
			panic("gf: EliminateRows row length mismatch")
		}
		f.addMul(d, src, cs[j], &nc)
	}
}
