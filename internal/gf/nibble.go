package gf

// Nibble-split coefficient tables: the SIMD-friendly table layout shared by
// every accelerated kernel backend (and by the portable tail loops that
// finish off what the block kernels leave behind).
//
// The idea — the classic Reed-Solomon "PSHUFB idiom" — is to split each
// source symbol into 4-bit nibbles and precompute, per coefficient c, one
// 16-entry table per nibble position. A product is then a handful of
// 16-entry lookups, and a 16-entry byte table is exactly one SIMD shuffle
// register (PSHUFB on amd64, TBL on arm64), so the same tables drive both
// the scalar tail loops below and the vector kernels in bulk_*.s:
//
//   - GF(2^8): s = n0 | n1<<4, so c*s = lo[n0] ^ hi[n1]. Two 16-byte
//     tables, 32 bytes per coefficient — both halves live in registers for
//     the whole kernel.
//   - GF(2^16): s = n0 | n1<<4 | n2<<8 | n3<<12, so c*s is the XOR of four
//     per-nibble contributions c*(nk<<4k). Each contribution is a 16-bit
//     value, kept as two byte tables (low and high product byte) so byte
//     shuffles can look them up: 4 nibbles x 2 halves = eight 16-byte
//     tables, 128 bytes per coefficient.
//
// The layouts below are part of the assembly ABI: bulk_amd64.s indexes
// nib8/nib16 by fixed byte offsets (lo tables first, then hi tables).

// nib8 holds the GF(2^8) nibble tables for one coefficient c:
// lo[n] = c*n, hi[n] = c*(n<<4).
type nib8 struct {
	lo [16]byte
	hi [16]byte
}

// nib16 holds the GF(2^16) nibble tables for one coefficient c: for nibble
// position k, lo[k][n] and hi[k][n] are the low and high bytes of
// c*(n<<4k).
type nib16 struct {
	lo [4][16]byte
	hi [4][16]byte
}

// buildNib8 fills the GF(2^8) nibble tables for coefficient c. Only valid
// on the 256-element field (mul8 is present) with c != 0.
func (f *Field[E]) buildNib8(t *nib8, c E) {
	row := f.mul8[int(c)<<8 : int(c)<<8+256]
	for n := 0; n < 16; n++ {
		t.lo[n] = byte(row[n])
		t.hi[n] = byte(row[n<<4])
	}
}

// buildNib16 fills the GF(2^16) nibble tables for coefficient c. Only
// valid on fields with at least 2^16 elements and c != 0.
//
// The build is the hot fixed cost of the accelerated path (it runs per
// coefficient, i.e. per elimination row), so instead of 60 log/exp
// lookups it uses the doubling recurrence ck*(2j) = 2*(ck*j) and
// ck*(2j+1) = 2*(ck*j) ^ ck: each table is 14 shift/xor steps with no
// memory loads, and the per-nibble coefficients ck = c<<4k chain by four
// more doublings.
func (f *Field[E]) buildNib16(t *nib16, c E) {
	poly := uint32(f.poly)
	mul2 := func(v uint32) uint32 {
		v <<= 1
		if v&0x10000 != 0 {
			v ^= poly
		}
		return v
	}
	ck := uint32(c)
	for k := 0; k < 4; k++ {
		var tab [16]uint32
		t.lo[k][0], t.hi[k][0] = 0, 0
		tab[1] = ck
		t.lo[k][1], t.hi[k][1] = byte(ck), byte(ck>>8)
		for j := 2; j < 16; j += 2 {
			d := mul2(tab[j/2])
			tab[j] = d
			t.lo[k][j], t.hi[k][j] = byte(d), byte(d>>8)
			d ^= ck
			tab[j+1] = d
			t.lo[k][j+1], t.hi[k][j+1] = byte(d), byte(d>>8)
		}
		ck = mul2(mul2(mul2(mul2(ck))))
	}
}

// mulNib8 computes c*s through the nibble tables.
func mulNib8(t *nib8, s uint8) uint8 {
	return t.lo[s&0xf] ^ t.hi[s>>4]
}

// mulNib16 computes c*s through the nibble tables.
func mulNib16(t *nib16, s uint16) uint16 {
	n0, n1, n2, n3 := s&0xf, (s>>4)&0xf, (s>>8)&0xf, s>>12
	lo := t.lo[0][n0] ^ t.lo[1][n1] ^ t.lo[2][n2] ^ t.lo[3][n3]
	hi := t.hi[0][n0] ^ t.hi[1][n1] ^ t.hi[2][n2] ^ t.hi[3][n3]
	return uint16(hi)<<8 | uint16(lo)
}

// addMulNib8 computes dst[i] ^= c*src[i] through the nibble tables; it is
// the portable form of the accelerated block kernels, used for tails and as
// the differential reference for the table layout.
func addMulNib8(dst, src []uint8, t *nib8) {
	for i, s := range src {
		dst[i] ^= mulNib8(t, s)
	}
}

// addMulNib16 is addMulNib8 for GF(2^16).
func addMulNib16(dst, src []uint16, t *nib16) {
	for i, s := range src {
		dst[i] ^= mulNib16(t, s)
	}
}

// addMulNib8x2 is the portable form of the 2-source fused kernel: one
// pass over dst accumulating both terms. Used for strip tails and as the
// differential reference for the fused table/ABI layout.
func addMulNib8x2(dst, s0, s1 []uint8, ts *[fusedWidth]nib8) {
	for i := range dst {
		dst[i] ^= mulNib8(&ts[0], s0[i]) ^ mulNib8(&ts[1], s1[i])
	}
}

// addMulNib8x4 is addMulNib8x2 for four source terms.
func addMulNib8x4(dst, s0, s1, s2, s3 []uint8, ts *[fusedWidth]nib8) {
	for i := range dst {
		dst[i] ^= mulNib8(&ts[0], s0[i]) ^ mulNib8(&ts[1], s1[i]) ^
			mulNib8(&ts[2], s2[i]) ^ mulNib8(&ts[3], s3[i])
	}
}

// addMulNib16x2 is addMulNib8x2 for GF(2^16).
func addMulNib16x2(dst, s0, s1 []uint16, ts *[fusedWidth]nib16) {
	for i := range dst {
		dst[i] ^= mulNib16(&ts[0], s0[i]) ^ mulNib16(&ts[1], s1[i])
	}
}

// addMulNib16x4 is addMulNib8x4 for GF(2^16).
func addMulNib16x4(dst, s0, s1, s2, s3 []uint16, ts *[fusedWidth]nib16) {
	for i := range dst {
		dst[i] ^= mulNib16(&ts[0], s0[i]) ^ mulNib16(&ts[1], s1[i]) ^
			mulNib16(&ts[2], s2[i]) ^ mulNib16(&ts[3], s3[i])
	}
}

// mulSliceNib8 computes dst[i] = c*dst[i] through the nibble tables.
func mulSliceNib8(dst []uint8, t *nib8) {
	for i, d := range dst {
		dst[i] = mulNib8(t, d)
	}
}

// mulSliceNib16 is mulSliceNib8 for GF(2^16).
func mulSliceNib16(dst []uint16, t *nib16) {
	for i, d := range dst {
		dst[i] = mulNib16(t, d)
	}
}
