package gf

import (
	"math/rand"
	"testing"
)

// The bulk kernels take different code paths depending on field width,
// coefficient and slice length (word-wide XOR, full product table, split
// product row, log/exp fallback). These property tests pin every path to
// the scalar Mul/Add reference.

// kernelLengths crosses every path boundary: empty, single, odd lengths,
// word-XOR head/tail remainders, and both sides of bulkMin16.
var kernelLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 31, 64, bulkMin16 - 1, bulkMin16, bulkMin16 + 1, 255, 256, 1000}

func testAddMulSlice[E Elem](t *testing.T, f *Field[E], rng *rand.Rand) {
	t.Helper()
	coeffs := []E{0, 1, 2, 3, E(f.Size() - 1)}
	for i := 0; i < 5; i++ {
		coeffs = append(coeffs, E(rng.Intn(f.Size())))
	}
	for _, n := range kernelLengths {
		// dst and src are offset views into larger arrays. Equal offsets
		// exercise the word-XOR path with a misaligned (but co-aligned)
		// head — the case where skipping head elements would corrupt
		// data; unequal offsets exercise the element fallback.
		for _, offs := range [][2]int{{0, 0}, {1, 1}, {3, 3}, {5, 5}, {0, 1}, {2, 7}} {
			do, so := offs[0], offs[1]
			dstBase := make([]E, n+do)
			srcBase := make([]E, n+so)
			dst, src := dstBase[do:], srcBase[so:]
			for i := range src {
				src[i] = E(rng.Intn(f.Size()))
			}
			for i := range dst {
				dst[i] = E(rng.Intn(f.Size()))
			}
			for _, c := range coeffs {
				want := make([]E, n)
				for i, s := range src {
					want[i] = f.Add(dst[i], f.Mul(c, s))
				}
				saved := append([]E(nil), dst...)
				f.AddMulSlice(dst, src, c)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("%s AddMulSlice(n=%d offs=%v c=%d)[%d] = %d, want %d",
							f.Name(), n, offs, c, i, dst[i], want[i])
					}
				}
				copy(dst, saved)
			}
		}
	}
}

func testMulSlice[E Elem](t *testing.T, f *Field[E], rng *rand.Rand) {
	t.Helper()
	coeffs := []E{0, 1, 2, E(f.Size() - 1), E(rng.Intn(f.Size()))}
	for _, n := range kernelLengths {
		base := make([]E, n)
		for i := range base {
			base[i] = E(rng.Intn(f.Size()))
		}
		for _, c := range coeffs {
			d := append([]E(nil), base...)
			want := make([]E, n)
			for i, v := range base {
				want[i] = f.Mul(c, v)
			}
			f.MulSlice(d, c)
			for i := range want {
				if d[i] != want[i] {
					t.Fatalf("%s MulSlice(n=%d c=%d)[%d] = %d, want %d", f.Name(), n, c, i, d[i], want[i])
				}
			}
		}
	}
}

func TestBulkKernelsMatchScalarGF256(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	testAddMulSlice(t, GF256(), rng)
	testMulSlice(t, GF256(), rng)
}

func TestBulkKernelsMatchScalarGF65536(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	testAddMulSlice(t, GF65536(), rng)
	testMulSlice(t, GF65536(), rng)
}

func TestDotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(f *Field[uint8]) {
		for _, n := range []int{0, 1, 17, 300} {
			a := make([]uint8, n)
			b := make([]uint8, n)
			for i := range a {
				a[i] = uint8(rng.Intn(f.Size()))
				b[i] = uint8(rng.Intn(f.Size()))
			}
			var want uint8
			for i := range a {
				want = f.Add(want, f.Mul(a[i], b[i]))
			}
			if got := f.Dot(a, b); got != want {
				t.Fatalf("Dot(n=%d) = %d, want %d", n, got, want)
			}
		}
	}
	check(GF256())
}

func benchAddMul[E Elem](b *testing.B, f *Field[E], n int, c E) {
	dst := make([]E, n)
	src := make([]E, n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = E(rng.Intn(f.Size()))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	b.SetBytes(int64(n * elemBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddMulSlice(dst, src, c)
	}
}

func BenchmarkAddMulSlice(b *testing.B) {
	b.Run("gf8/n1024/c7", func(b *testing.B) { benchAddMul(b, GF256(), 1024, 7) })
	b.Run("gf8/n1024/c1", func(b *testing.B) { benchAddMul(b, GF256(), 1024, 1) })
	b.Run("gf16/n50/c7", func(b *testing.B) { benchAddMul(b, GF65536(), 50, 7) })
	b.Run("gf16/n1024/c7", func(b *testing.B) { benchAddMul(b, GF65536(), 1024, 7) })
	b.Run("gf16/n1024/c1", func(b *testing.B) { benchAddMul(b, GF65536(), 1024, 1) })
}
