package gf

import (
	"fmt"
	"math/rand"
	"testing"
)

// The bulk kernels take different code paths depending on field width,
// coefficient and slice length (word-wide XOR, full product table, split
// product row, log/exp fallback). These property tests pin every path to
// the scalar Mul/Add reference.

// kernelLengths crosses every path boundary: empty, single, odd lengths,
// word-XOR head/tail remainders, and both sides of bulkMin16.
var kernelLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 31, 64, bulkMin16 - 1, bulkMin16, bulkMin16 + 1, 255, 256, 1000}

func testAddMulSlice[E Elem](t *testing.T, f *Field[E], rng *rand.Rand) {
	t.Helper()
	coeffs := []E{0, 1, 2, 3, E(f.Size() - 1)}
	for i := 0; i < 5; i++ {
		coeffs = append(coeffs, E(rng.Intn(f.Size())))
	}
	for _, n := range kernelLengths {
		// dst and src are offset views into larger arrays. Equal offsets
		// exercise the word-XOR path with a misaligned (but co-aligned)
		// head — the case where skipping head elements would corrupt
		// data; unequal offsets exercise the element fallback.
		for _, offs := range [][2]int{{0, 0}, {1, 1}, {3, 3}, {5, 5}, {0, 1}, {2, 7}} {
			do, so := offs[0], offs[1]
			dstBase := make([]E, n+do)
			srcBase := make([]E, n+so)
			dst, src := dstBase[do:], srcBase[so:]
			for i := range src {
				src[i] = E(rng.Intn(f.Size()))
			}
			for i := range dst {
				dst[i] = E(rng.Intn(f.Size()))
			}
			for _, c := range coeffs {
				want := make([]E, n)
				for i, s := range src {
					want[i] = f.Add(dst[i], f.Mul(c, s))
				}
				saved := append([]E(nil), dst...)
				f.AddMulSlice(dst, src, c)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("%s AddMulSlice(n=%d offs=%v c=%d)[%d] = %d, want %d",
							f.Name(), n, offs, c, i, dst[i], want[i])
					}
				}
				copy(dst, saved)
			}
		}
	}
}

func testMulSlice[E Elem](t *testing.T, f *Field[E], rng *rand.Rand) {
	t.Helper()
	coeffs := []E{0, 1, 2, E(f.Size() - 1), E(rng.Intn(f.Size()))}
	for _, n := range kernelLengths {
		base := make([]E, n)
		for i := range base {
			base[i] = E(rng.Intn(f.Size()))
		}
		for _, c := range coeffs {
			d := append([]E(nil), base...)
			want := make([]E, n)
			for i, v := range base {
				want[i] = f.Mul(c, v)
			}
			f.MulSlice(d, c)
			for i := range want {
				if d[i] != want[i] {
					t.Fatalf("%s MulSlice(n=%d c=%d)[%d] = %d, want %d", f.Name(), n, c, i, d[i], want[i])
				}
			}
		}
	}
}

func TestBulkKernelsMatchScalarGF256(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	testAddMulSlice(t, GF256(), rng)
	testMulSlice(t, GF256(), rng)
}

func TestBulkKernelsMatchScalarGF65536(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	testAddMulSlice(t, GF65536(), rng)
	testMulSlice(t, GF65536(), rng)
}

func TestDotMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(f *Field[uint8]) {
		for _, n := range []int{0, 1, 17, 300} {
			a := make([]uint8, n)
			b := make([]uint8, n)
			for i := range a {
				a[i] = uint8(rng.Intn(f.Size()))
				b[i] = uint8(rng.Intn(f.Size()))
			}
			var want uint8
			for i := range a {
				want = f.Add(want, f.Mul(a[i], b[i]))
			}
			if got := f.Dot(a, b); got != want {
				t.Fatalf("Dot(n=%d) = %d, want %d", n, got, want)
			}
		}
	}
	check(GF256())
}

// TestNibbleTablesMatchScalar pins the nibble-split table layout itself:
// for a spread of coefficients, the table-composed product must equal the
// scalar Mul over every symbol (exhaustive for both fields).
func TestNibbleTablesMatchScalar(t *testing.T) {
	f8 := GF256()
	for _, c := range []uint8{1, 2, 3, 7, 0x53, 0xca, 0xff} {
		var t8 nib8
		f8.buildNib8(&t8, c)
		for s := 0; s < 256; s++ {
			if got, want := mulNib8(&t8, uint8(s)), f8.Mul(c, uint8(s)); got != want {
				t.Fatalf("gf8 nibble tables: %d*%d = %d, want %d", c, s, got, want)
			}
		}
	}
	f16 := GF65536()
	rng := rand.New(rand.NewSource(4))
	coeffs := []uint16{1, 2, 3, 7, 0x100b, 0x8000, 0xffff}
	for i := 0; i < 5; i++ {
		coeffs = append(coeffs, uint16(1+rng.Intn(f16.Size()-1)))
	}
	for _, c := range coeffs {
		var t16 nib16
		f16.buildNib16(&t16, c)
		for s := 0; s < 65536; s++ {
			if got, want := mulNib16(&t16, uint16(s)), f16.Mul(c, uint16(s)); got != want {
				t.Fatalf("gf16 nibble tables: %d*%d = %d, want %d", c, s, got, want)
			}
		}
	}
}

// TestDispatchMatchesGeneric differential-tests the dispatched kernels
// (whatever layer pickKernels selected on this machine) against the
// portable generic layer across lengths, alignments and coefficients —
// the byte-identical guarantee the arch backends must uphold.
func TestDispatchMatchesGeneric(t *testing.T) {
	check := func(t *testing.T, f16 bool) {
		rng := rand.New(rand.NewSource(5))
		run := func(n, do, so int, c int) {
			if f16 {
				diffOne(t, GF65536(), n, do, so, uint16(c), rng)
			} else {
				diffOne(t, GF256(), n, do, so, uint8(c), rng)
			}
		}
		for _, n := range kernelLengths {
			for _, offs := range [][2]int{{0, 0}, {1, 3}, {7, 2}} {
				for _, c := range []int{0, 1, 2, 7, 255, 40000} {
					run(n, offs[0], offs[1], c)
				}
			}
		}
	}
	t.Run("gf8", func(t *testing.T) { check(t, false) })
	t.Run("gf16", func(t *testing.T) { check(t, true) })
}

func diffOne[E Elem](t *testing.T, f *Field[E], n, do, so int, c E, rng *rand.Rand) {
	t.Helper()
	dstBase := make([]E, n+do)
	srcBase := make([]E, n+so)
	dst, src := dstBase[do:], srcBase[so:]
	for i := range src {
		src[i] = E(rng.Intn(f.Size()))
	}
	for i := range dst {
		dst[i] = E(rng.Intn(f.Size()))
	}
	want := append([]E(nil), dst...)
	f.AddMulSliceGeneric(want, src, c)
	got := append([]E(nil), dst...)
	f.AddMulSlice(got, src, c)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s kernel %q AddMulSlice(n=%d offs=%d/%d c=%d)[%d] = %d, generic says %d",
				f.Name(), f.Kernel(), n, do, so, c, i, got[i], want[i])
		}
	}
	mwant := append([]E(nil), dst...)
	f.MulSliceGeneric(mwant, c)
	mgot := append([]E(nil), dst...)
	f.MulSlice(mgot, c)
	for i := range mwant {
		if mgot[i] != mwant[i] {
			t.Fatalf("%s kernel %q MulSlice(n=%d c=%d)[%d] = %d, generic says %d",
				f.Name(), f.Kernel(), n, c, i, mgot[i], mwant[i])
		}
	}
}

// TestBatchedEntryPoints pins AddMulSlices and EliminateRows (including
// their shared nibble-table cache, exercised by repeated and changing
// coefficients) against a loop of generic single-row calls, over both
// fields.
func TestBatchedEntryPoints(t *testing.T) {
	for _, n := range []int{0, 3, 50, 96, 97, 300, 1024} {
		testBatched(t, GF256(), n)
		testBatched(t, GF65536(), n)
	}
}

func testBatched[E Elem](t *testing.T, f *Field[E], n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	const rows = 9
	srcs := make([][]E, rows)
	for j := range srcs {
		srcs[j] = make([]E, n)
		for i := range srcs[j] {
			srcs[j][i] = E(rng.Intn(f.Size()))
		}
	}
	// Repeats, zeros and ones in the coefficient run, so the table cache
	// has to both reuse and invalidate.
	cs := []E{7, 7, 0, 1, 7, 9, 9, E(f.Size() - 1), 7}
	dst := make([]E, n)
	for i := range dst {
		dst[i] = E(rng.Intn(f.Size()))
	}
	want := append([]E(nil), dst...)
	for j := range srcs {
		f.AddMulSliceGeneric(want, srcs[j], cs[j])
	}
	got := append([]E(nil), dst...)
	f.AddMulSlices(got, srcs, cs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s AddMulSlices(n=%d)[%d] = %d, want %d", f.Name(), n, i, got[i], want[i])
		}
	}

	// EliminateRows: same coefficients, dsts are the rows this time.
	dsts := make([][]E, rows)
	wants := make([][]E, rows)
	for j := range dsts {
		dsts[j] = make([]E, n)
		for i := range dsts[j] {
			dsts[j][i] = E(rng.Intn(f.Size()))
		}
		wants[j] = append([]E(nil), dsts[j]...)
		f.AddMulSliceGeneric(wants[j], dst, cs[j])
	}
	f.EliminateRows(dsts, dst, cs)
	for j := range dsts {
		for i := range dsts[j] {
			if dsts[j][i] != wants[j][i] {
				t.Fatalf("%s EliminateRows(n=%d)[%d][%d] = %d, want %d", f.Name(), n, j, i, dsts[j][i], wants[j][i])
			}
		}
	}
}

// fusedLengths crosses every fused-routing boundary: below the fused
// minimums, around the 128-byte strip size, strip+tail splits, and
// multi-strip lengths.
var fusedLengths = []int{0, 1, 31, 63, 64, 65, 95, 96, 97, 127, 128, 129, 191, 192, 255, 256, 257, 383, 384, 1000, 1024, 4096}

// TestFusedMatchesGeneric pins the fused AddMulSlices tiling — arch strip
// kernels, portable fused tails, term grouping (4/2/1), zero and unit
// coefficients, repeated-coefficient table sharing — against a loop of
// generic single-row calls, across source counts and offsets, for both
// fields. It also pins AddMulSlicesPerTerm (the benchmark reference arm)
// to the same result.
func TestFusedMatchesGeneric(t *testing.T) {
	t.Run("gf8", func(t *testing.T) { testFused(t, GF256()) })
	t.Run("gf16", func(t *testing.T) { testFused(t, GF65536()) })
}

func testFused[E Elem](t *testing.T, f *Field[E]) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for _, n := range fusedLengths {
		for rows := 0; rows <= 9; rows++ {
			for _, off := range []int{0, 1, 3} {
				dstBase := make([]E, n+off)
				dst := dstBase[off:]
				for i := range dst {
					dst[i] = E(rng.Intn(f.Size()))
				}
				srcs := make([][]E, rows)
				cs := make([]E, rows)
				for j := range srcs {
					srcs[j] = make([]E, n)
					for i := range srcs[j] {
						srcs[j][i] = E(rng.Intn(f.Size()))
					}
					// A mix of repeats, zeros and ones so passes exercise
					// table sharing, term skipping and identity tables.
					switch j % 4 {
					case 0:
						cs[j] = 7
					case 1:
						cs[j] = E(rng.Intn(f.Size()))
					case 2:
						cs[j] = 0
					default:
						cs[j] = 1
					}
				}
				want := append([]E(nil), dst...)
				for j := range srcs {
					f.AddMulSliceGeneric(want, srcs[j], cs[j])
				}
				got := append([]E(nil), dst...)
				f.AddMulSlices(got, srcs, cs)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s AddMulSlices(n=%d rows=%d off=%d)[%d] = %d, want %d",
							f.Name(), n, rows, off, i, got[i], want[i])
					}
				}
				per := append([]E(nil), dst...)
				f.AddMulSlicesPerTerm(per, srcs, cs)
				for i := range want {
					if per[i] != want[i] {
						t.Fatalf("%s AddMulSlicesPerTerm(n=%d rows=%d off=%d)[%d] = %d, want %d",
							f.Name(), n, rows, off, i, per[i], want[i])
					}
				}
			}
		}
	}
}

// TestFusedPortableLoops pins the portable fused nibble loops (the strip
// kernels' tail path and differential reference for the fused ABI)
// against scalar arithmetic directly.
func TestFusedPortableLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f8 := GF256()
	f16 := GF65536()
	for _, n := range []int{0, 1, 5, 17, 40, 127} {
		var t8 [fusedWidth]nib8
		var t16 [fusedWidth]nib16
		c8 := make([]uint8, fusedWidth)
		c16 := make([]uint16, fusedWidth)
		s8 := make([][]uint8, fusedWidth)
		s16 := make([][]uint16, fusedWidth)
		for j := 0; j < fusedWidth; j++ {
			c8[j] = uint8(1 + rng.Intn(255))
			c16[j] = uint16(1 + rng.Intn(65535))
			f8.buildNib8(&t8[j], c8[j])
			f16.buildNib16(&t16[j], c16[j])
			s8[j] = make([]uint8, n)
			s16[j] = make([]uint16, n)
			for i := 0; i < n; i++ {
				s8[j][i] = uint8(rng.Intn(256))
				s16[j][i] = uint16(rng.Intn(65536))
			}
		}
		d8 := make([]uint8, n)
		d16 := make([]uint16, n)
		for i := 0; i < n; i++ {
			d8[i] = uint8(rng.Intn(256))
			d16[i] = uint16(rng.Intn(65536))
		}
		w8 := append([]uint8(nil), d8...)
		w16 := append([]uint16(nil), d16...)
		for j := 0; j < fusedWidth; j++ {
			for i := 0; i < n; i++ {
				w8[i] ^= f8.Mul(c8[j], s8[j][i])
				w16[i] ^= f16.Mul(c16[j], s16[j][i])
			}
		}
		g8 := append([]uint8(nil), d8...)
		addMulNib8x4(g8, s8[0], s8[1], s8[2], s8[3], &t8)
		g16 := append([]uint16(nil), d16...)
		addMulNib16x4(g16, s16[0], s16[1], s16[2], s16[3], &t16)
		for i := 0; i < n; i++ {
			if g8[i] != w8[i] {
				t.Fatalf("addMulNib8x4(n=%d)[%d] = %d, want %d", n, i, g8[i], w8[i])
			}
			if g16[i] != w16[i] {
				t.Fatalf("addMulNib16x4(n=%d)[%d] = %d, want %d", n, i, g16[i], w16[i])
			}
		}
		g8 = append(g8[:0], d8...)
		addMulNib8x2(g8, s8[0], s8[1], &t8)
		addMulNib8x2(g8[:0:0], nil, nil, &t8) // degenerate empty call
		g16 = append(g16[:0], d16...)
		addMulNib16x2(g16, s16[0], s16[1], &t16)
		for i := 0; i < n; i++ {
			want8 := d8[i] ^ f8.Mul(c8[0], s8[0][i]) ^ f8.Mul(c8[1], s8[1][i])
			want16 := d16[i] ^ f16.Mul(c16[0], s16[0][i]) ^ f16.Mul(c16[1], s16[1][i])
			if g8[i] != want8 {
				t.Fatalf("addMulNib8x2(n=%d)[%d] = %d, want %d", n, i, g8[i], want8)
			}
			if g16[i] != want16 {
				t.Fatalf("addMulNib16x2(n=%d)[%d] = %d, want %d", n, i, g16[i], want16)
			}
		}
	}
}

func benchAddMul[E Elem](b *testing.B, f *Field[E], n int, c E, generic bool) {
	dst := make([]E, n)
	src := make([]E, n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = E(rng.Intn(f.Size()))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	b.SetBytes(int64(n * elemBytes))
	b.ResetTimer()
	if generic {
		for i := 0; i < b.N; i++ {
			f.AddMulSliceGeneric(dst, src, c)
		}
		return
	}
	for i := 0; i < b.N; i++ {
		f.AddMulSlice(dst, src, c)
	}
}

// BenchmarkAddMulSlice is the kernel benchmark matrix (field x slice
// length x kernel) the CI bench job and cmd/thinair-bench's BENCH_gf.json
// emitter run. The "k=dispatch" arm measures whatever pickKernels selected
// on this machine (Field.Kernel names it); "k=generic" pins the portable
// reference layer so the dispatch speedup is visible in one run.
func BenchmarkAddMulSlice(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024, 4096, 16384} {
		n := n
		b.Run(fmt.Sprintf("gf8/n%d/k=dispatch", n), func(b *testing.B) { benchAddMul(b, GF256(), n, 7, false) })
		b.Run(fmt.Sprintf("gf8/n%d/k=generic", n), func(b *testing.B) { benchAddMul(b, GF256(), n, 7, true) })
		b.Run(fmt.Sprintf("gf16/n%d/k=dispatch", n), func(b *testing.B) { benchAddMul(b, GF65536(), n, 7, false) })
		b.Run(fmt.Sprintf("gf16/n%d/k=generic", n), func(b *testing.B) { benchAddMul(b, GF65536(), n, 7, true) })
	}
	// The coefficient-1 (pure XOR) arms, common in practice.
	b.Run("gf8/n1024/k=xor", func(b *testing.B) { benchAddMul(b, GF256(), 1024, 1, false) })
	b.Run("gf16/n1024/k=xor", func(b *testing.B) { benchAddMul(b, GF65536(), 1024, 1, false) })
}

func benchAddMulSlices[E Elem](b *testing.B, f *Field[E], n, rows int, perTerm bool) {
	rng := rand.New(rand.NewSource(11))
	dst := make([]E, n)
	srcs := make([][]E, rows)
	cs := make([]E, rows)
	for j := range srcs {
		srcs[j] = make([]E, n)
		for i := range srcs[j] {
			srcs[j][i] = E(rng.Intn(f.Size()))
		}
		cs[j] = E(2 + rng.Intn(f.Size()-2))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	b.SetBytes(int64(n * elemBytes * rows))
	b.ResetTimer()
	if perTerm {
		for i := 0; i < b.N; i++ {
			f.AddMulSlicesPerTerm(dst, srcs, cs)
		}
		return
	}
	for i := 0; i < b.N; i++ {
		f.AddMulSlices(dst, srcs, cs)
	}
}

// BenchmarkAddMulSlices is the fused-kernel benchmark matrix (field x
// slice length x source count x routing arm) the CI bench gate and
// thinair-bench's BENCH_gf.json emitter run. The "r=fused" arm measures
// the fused tiling (multi-source strip kernels where available);
// "r=perterm" pins the per-term dispatch path, so the fusion speedup is
// visible in one run. Throughput is reported over all source bytes
// processed (n * elemBytes * sources per op).
func BenchmarkAddMulSlices(b *testing.B) {
	for _, n := range []int{256, 16384} {
		for _, rows := range []int{1, 2, 4, 8} {
			n, rows := n, rows
			b.Run(fmt.Sprintf("gf8/n%d/s%d/r=fused", n, rows), func(b *testing.B) {
				benchAddMulSlices(b, GF256(), n, rows, false)
			})
			b.Run(fmt.Sprintf("gf8/n%d/s%d/r=perterm", n, rows), func(b *testing.B) {
				benchAddMulSlices(b, GF256(), n, rows, true)
			})
			b.Run(fmt.Sprintf("gf16/n%d/s%d/r=fused", n, rows), func(b *testing.B) {
				benchAddMulSlices(b, GF65536(), n, rows, false)
			})
			b.Run(fmt.Sprintf("gf16/n%d/s%d/r=perterm", n, rows), func(b *testing.B) {
				benchAddMulSlices(b, GF65536(), n, rows, true)
			})
		}
	}
}
