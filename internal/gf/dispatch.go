package gf

import "sync/atomic"

// Dispatch counting is the observability hook on the batched GF entry
// points: how many bulk combinations ran, and how many of them reached
// a fused arch-kernel pass versus the per-term portable route. It is
// OFF by default and gated on one atomic load per *batched call* (never
// per element, never inside AddMulSlice), so the blocking kernel bench
// gate in CI — which runs with counting off — sees no new work at all.
var (
	dispatchCounting    atomic.Bool
	dispatchSlices      atomic.Uint64
	dispatchSlicesFused atomic.Uint64
	dispatchEliminate   atomic.Uint64
)

// SetDispatchCounting turns kernel dispatch counting on or off
// process-wide.
func SetDispatchCounting(on bool) { dispatchCounting.Store(on) }

// DispatchCounts is a snapshot of the dispatch counters.
type DispatchCounts struct {
	// AddMulSlices counts batched multi-term combinations.
	AddMulSlices uint64
	// AddMulSlicesFused counts the subset routed to fused arch kernels.
	AddMulSlicesFused uint64
	// EliminateRows counts batched row-elimination calls.
	EliminateRows uint64
}

// ReadDispatchCounts returns the current counter values (zeros while
// counting has never been enabled).
func ReadDispatchCounts() DispatchCounts {
	return DispatchCounts{
		AddMulSlices:      dispatchSlices.Load(),
		AddMulSlicesFused: dispatchSlicesFused.Load(),
		EliminateRows:     dispatchEliminate.Load(),
	}
}

func countDispatch(c *atomic.Uint64) {
	if dispatchCounting.Load() {
		c.Add(1)
	}
}
