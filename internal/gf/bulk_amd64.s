//go:build amd64 && !purego

#include "textflag.h"

// AVX2 block kernels over the nibble-split tables (see nibble.go for the
// table layout, which these kernels index by fixed byte offsets).
//
// GF(2^8), per 32-byte block (32 symbols):
//   c*s = lo[s&0xf] ^ hi[s>>4], one VPSHUFB per table half.
//
// GF(2^16), per 32-byte block (16 little-endian words): extract the four
// nibbles of every word in place — no byte deinterleave needed. For
// nibble k the index vector qk holds the nibble value in each word's low
// byte and zero in the high byte, so VPSHUFB against the 16-entry tables
// yields the contribution's low product bytes in even positions (and
// table[0] = 0 in odd ones); the high product bytes are shuffled the same
// way and moved into the odd positions with a word shift:
//   contribution_k = PSHUFB(lo[k], qk) ^ (PSHUFB(hi[k], qk) << 8)
//   c*s            = contribution_0 ^ ... ^ contribution_3

// 0x0f in every byte: per-byte nibble mask for the GF(2^8) kernels.
DATA byteNibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL byteNibMask<>(SB), RODATA|NOPTR, $32

// 0x000f in every word: per-word nibble mask for the GF(2^16) kernels.
DATA wordNibMask<>+0x00(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x08(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x10(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x18(SB)/8, $0x000f000f000f000f
GLOBL wordNibMask<>(SB), RODATA|NOPTR, $32

// func gf8AddMulAVX2(dst, src *uint8, blocks int, t *nib8)
// dst[i] ^= c*src[i] over blocks*32 bytes.
TEXT ·gf8AddMulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	VBROADCASTI128 (DX), Y0      // lo nibble table in both lanes
	VBROADCASTI128 16(DX), Y1    // hi nibble table in both lanes
	VMOVDQU byteNibMask<>(SB), Y2

gf8addmul_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3           // low nibbles
	VPAND   Y2, Y4, Y4           // high nibbles
	VPSHUFB Y3, Y0, Y3           // lo[low nibble]
	VPSHUFB Y4, Y1, Y4           // hi[high nibble]
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf8addmul_loop
	VZEROUPPER
	RET

// func gf8MulAVX2(dst, src *uint8, blocks int, t *nib8)
// dst[i] = c*src[i] over blocks*32 bytes.
TEXT ·gf8MulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	VBROADCASTI128 (DX), Y0
	VBROADCASTI128 16(DX), Y1
	VMOVDQU byteNibMask<>(SB), Y2

gf8mul_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf8mul_loop
	VZEROUPPER
	RET

// gf16 kernel body shared by the add-mul and mul variants: computes
// c*src-block into Y12 from the block in Y9. Tables: Y0-Y3 = lo[0..3],
// Y4-Y7 = hi[0..3], Y8 = word nibble mask. Clobbers Y10, Y11.
#define GF16BLOCK \
	VPAND   Y8, Y9, Y10   \ // q0: nibble 0
	VPSHUFB Y10, Y0, Y12  \
	VPSHUFB Y10, Y4, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $4, Y9, Y10   \ // q1: nibble 1
	VPAND   Y8, Y10, Y10  \
	VPSHUFB Y10, Y1, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y5, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $8, Y9, Y10   \ // q2: nibble 2
	VPAND   Y8, Y10, Y10  \
	VPSHUFB Y10, Y2, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y6, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $12, Y9, Y10  \ // q3: nibble 3 (shift clears all other bits)
	VPSHUFB Y10, Y3, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y7, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12

#define GF16LOADTABLES \
	VBROADCASTI128 (DX), Y0     \
	VBROADCASTI128 16(DX), Y1   \
	VBROADCASTI128 32(DX), Y2   \
	VBROADCASTI128 48(DX), Y3   \
	VBROADCASTI128 64(DX), Y4   \
	VBROADCASTI128 80(DX), Y5   \
	VBROADCASTI128 96(DX), Y6   \
	VBROADCASTI128 112(DX), Y7  \
	VMOVDQU wordNibMask<>(SB), Y8

// func gf16AddMulAVX2(dst, src *uint16, blocks int, t *nib16)
// dst[i] ^= c*src[i] over blocks*16 words.
TEXT ·gf16AddMulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	GF16LOADTABLES

gf16addmul_loop:
	VMOVDQU (SI), Y9
	GF16BLOCK
	VPXOR   (DI), Y12, Y12
	VMOVDQU Y12, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf16addmul_loop
	VZEROUPPER
	RET

// func gf16MulAVX2(dst, src *uint16, blocks int, t *nib16)
// dst[i] = c*src[i] over blocks*16 words.
TEXT ·gf16MulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	GF16LOADTABLES

gf16mul_loop:
	VMOVDQU (SI), Y9
	GF16BLOCK
	VMOVDQU Y12, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf16mul_loop
	VZEROUPPER
	RET

// Fused multi-source kernels. The single-source kernels above walk the
// accumulator once per (coefficient, src) term: an N-term combination
// loads and stores dst N times. The fused kernels keep a 128-byte strip
// of the accumulator in four YMM registers across 2 or 4 terms, so dst
// traffic (and loop overhead) is paid once per strip instead of once per
// term:
//
//   - GF(2^8): the 2 nibble tables of every term stay resident (2 terms =
//     4 table registers, 4 terms = 8), so a strip costs one dst load/store
//     plus per term: 4 src loads and 8 shuffles. Accumulators live in
//     Y12-Y15.
//   - GF(2^16): a byte-planar scheme (see the comment further down) that
//     halves the shuffle count per symbol; one term's 8 tables fill half
//     the register file, so they are (re)broadcast from L1 at each strip,
//     which the 4-block strip amortizes. Accumulator planes live in
//     Y8-Y11.
//
// All fused kernels share one signature shape:
//
//   func gfNAddMulKAVX2(dst *T, srcs **T, strips int, ts *nibN)
//
// srcs points at an array of K source pointers, ts at K contiguous nibble
// tables (the routing layer passes stack arrays), and strips counts
// 128-byte units. The routing layer guarantees strips >= 1 and finishes
// tails with the portable fused nibble loops over the same tables.

// GF8ACC computes one 32-byte block's contribution c*src and XORs it into
// the accumulator register: src block in Y9, nibble mask in Y8, tables in
// lo/hi. Clobbers Y10, Y11.
#define GF8ACC(lo, hi, acc) \
	VPSRLW  $4, Y9, Y10   \
	VPAND   Y8, Y9, Y11   \
	VPAND   Y8, Y10, Y10  \
	VPSHUFB Y11, lo, Y11  \
	VPXOR   Y11, acc, acc \
	VPSHUFB Y10, hi, Y10  \
	VPXOR   Y10, acc, acc

// GF8STRIPTERM processes one term across the four blocks of a strip:
// src base register in sreg, tables in lo/hi, accumulators Y12-Y15.
#define GF8STRIPTERM(sreg, lo, hi) \
	VMOVDQU (sreg), Y9    \
	GF8ACC(lo, hi, Y12)   \
	VMOVDQU 32(sreg), Y9  \
	GF8ACC(lo, hi, Y13)   \
	VMOVDQU 64(sreg), Y9  \
	GF8ACC(lo, hi, Y14)   \
	VMOVDQU 96(sreg), Y9  \
	GF8ACC(lo, hi, Y15)

// LOADACC / STOREACC move one 128-byte dst strip in and out of Y12-Y15.
#define LOADACC \
	VMOVDQU (DI), Y12   \
	VMOVDQU 32(DI), Y13 \
	VMOVDQU 64(DI), Y14 \
	VMOVDQU 96(DI), Y15

#define STOREACC \
	VMOVDQU Y12, (DI)   \
	VMOVDQU Y13, 32(DI) \
	VMOVDQU Y14, 64(DI) \
	VMOVDQU Y15, 96(DI)

// func gf8AddMul2AVX2(dst *uint8, srcs **uint8, strips int, ts *nib8)
// dst[i] ^= c0*src0[i] ^ c1*src1[i] over strips*128 bytes.
TEXT ·gf8AddMul2AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ srcs+8(FP), AX
	MOVQ (AX), R8
	MOVQ 8(AX), R9
	MOVQ strips+16(FP), CX
	MOVQ ts+24(FP), DX
	VBROADCASTI128 (DX), Y0     // lo tables, term 0
	VBROADCASTI128 16(DX), Y1   // hi tables, term 0
	VBROADCASTI128 32(DX), Y2   // term 1
	VBROADCASTI128 48(DX), Y3
	VMOVDQU byteNibMask<>(SB), Y8

gf8addmul2_loop:
	LOADACC
	GF8STRIPTERM(R8, Y0, Y1)
	GF8STRIPTERM(R9, Y2, Y3)
	STOREACC
	ADDQ $128, DI
	ADDQ $128, R8
	ADDQ $128, R9
	DECQ CX
	JNZ  gf8addmul2_loop
	VZEROUPPER
	RET

// func gf8AddMul4AVX2(dst *uint8, srcs **uint8, strips int, ts *nib8)
// dst[i] ^= c0*src0[i] ^ ... ^ c3*src3[i] over strips*128 bytes.
TEXT ·gf8AddMul4AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ srcs+8(FP), AX
	MOVQ (AX), R8
	MOVQ 8(AX), R9
	MOVQ 16(AX), R10
	MOVQ 24(AX), R11
	MOVQ strips+16(FP), CX
	MOVQ ts+24(FP), DX
	VBROADCASTI128 (DX), Y0     // term 0
	VBROADCASTI128 16(DX), Y1
	VBROADCASTI128 32(DX), Y2   // term 1
	VBROADCASTI128 48(DX), Y3
	VBROADCASTI128 64(DX), Y4   // term 2
	VBROADCASTI128 80(DX), Y5
	VBROADCASTI128 96(DX), Y6   // term 3
	VBROADCASTI128 112(DX), Y7
	VMOVDQU byteNibMask<>(SB), Y8

gf8addmul4_loop:
	LOADACC
	GF8STRIPTERM(R8, Y0, Y1)
	GF8STRIPTERM(R9, Y2, Y3)
	GF8STRIPTERM(R10, Y4, Y5)
	GF8STRIPTERM(R11, Y6, Y7)
	STOREACC
	ADDQ $128, DI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $128, R10
	ADDQ $128, R11
	DECQ CX
	JNZ  gf8addmul4_loop
	VZEROUPPER
	RET

// The fused GF(2^16) kernels work on a byte-planar view of each strip:
// the 64 interleaved little-endian words are deinterleaved into a plane
// of 64 low bytes and a plane of 64 high bytes (two YMM each). In planar
// form one VPSHUFB covers a nibble of 32 symbols instead of 16, halving
// the shuffle count per symbol — the layout idea the fastest
// Reed-Solomon GF(2^16) kernels use — which is what lifts the compute
// ceiling far enough above the interleaved single-source kernel for
// fusion's memory savings to show. The deinterleave costs 8 ops per 32
// words (shuffle to [evens|odds] per lane, VPERMQ to planar halves,
// VPERM2I128 to full planes) and is amortized over all nibble positions
// of a term; the accumulator planes convert once per strip.
//
// Register budget (exactly 16): Y0-Y3 lo tables, Y4-Y7 hi tables,
// Y8-Y11 accumulator planes (L0, H0, L1, H1), Y12-Y15 transient
// (deinterleave staging, source planes, shuffle temporaries). The byte
// nibble mask and the deinterleave pattern come in as memory operands.

// deintPat gathers the even bytes then the odd bytes of each 128-bit
// lane: the word-to-plane shuffle.
DATA deintPat<>+0x00(SB)/8, $0x0e0c0a0806040200
DATA deintPat<>+0x08(SB)/8, $0x0f0d0b0907050301
DATA deintPat<>+0x10(SB)/8, $0x0e0c0a0806040200
DATA deintPat<>+0x18(SB)/8, $0x0f0d0b0907050301
GLOBL deintPat<>(SB), RODATA|NOPTR, $32

// GF16DEINT loads 32 interleaved words at off(sreg) and produces their
// low-byte plane in outL and high-byte plane in outH, staging through tA
// and tB.
#define GF16DEINT(off, sreg, outL, outH, tA, tB) \
	VMOVDQU    off+0(sreg), tA          \
	VMOVDQU    off+32(sreg), tB         \
	VPSHUFB    deintPat<>(SB), tA, tA   \
	VPSHUFB    deintPat<>(SB), tB, tB   \
	VPERMQ     $0xd8, tA, tA            \
	VPERMQ     $0xd8, tB, tB            \
	VPERM2I128 $0x20, tB, tA, outL      \
	VPERM2I128 $0x31, tB, tA, outH

// GF16REINT interleaves the contribution planes aL/aH back into two
// 32-word blocks, XORs them into dst at off(DI), and stores. The
// accumulators start zeroed each strip, so dst itself never needs
// deinterleaving — it is folded in here, in interleaved form.
#define GF16REINT(off, aL, aH, tA, tB) \
	VPUNPCKLBW aH, aL, tA          \
	VPUNPCKHBW aH, aL, tB          \
	VPERM2I128 $0x20, tB, tA, aL   \
	VPERM2I128 $0x31, tB, tA, aH   \
	VPXOR      off+0(DI), aL, aL   \
	VPXOR      off+32(DI), aH, aH  \
	VMOVDQU    aL, off+0(DI)       \
	VMOVDQU    aH, off+32(DI)

// GF16ZEROACC clears the four accumulator planes for a new strip.
#define GF16ZEROACC \
	VPXOR Y8, Y8, Y8    \
	VPXOR Y9, Y9, Y9    \
	VPXOR Y10, Y10, Y10 \
	VPXOR Y11, Y11, Y11

// GF16PLANARTERM accumulates one term's contribution for 32 words: source
// planes in Y14 (low bytes) and Y15 (high bytes), tables in Y0-Y7,
// accumulator planes aL/aH. Destroys Y14, Y15; clobbers Y12, Y13. Each
// nibble position k contributes shuffle(lo_k) to the low plane and
// shuffle(hi_k) to the high plane. The odd nibbles come from
// (plane ^ low_nibbles) >> 4: the word-wise shift of plane & 0xf0 leaves
// bits 4-7 of every byte zero (the neighbor byte's contribution was
// masked off before the shift), so the result is a clean VPSHUFB index
// with one register XOR instead of a second mask load.
#define GF16PLANARTERM(aL, aH) \
	VPAND   byteNibMask<>(SB), Y14, Y12 \ // nibble 0: low bytes & 0xf
	VPSHUFB Y12, Y0, Y13                \
	VPXOR   Y13, aL, aL                 \
	VPSHUFB Y12, Y4, Y13                \
	VPXOR   Y13, aH, aH                 \
	VPXOR   Y12, Y14, Y14               \ // nibble 1: (low & 0xf0) >> 4
	VPSRLW  $4, Y14, Y14                \
	VPSHUFB Y14, Y1, Y13                \
	VPXOR   Y13, aL, aL                 \
	VPSHUFB Y14, Y5, Y13                \
	VPXOR   Y13, aH, aH                 \
	VPAND   byteNibMask<>(SB), Y15, Y12 \ // nibble 2: high bytes & 0xf
	VPSHUFB Y12, Y2, Y13                \
	VPXOR   Y13, aL, aL                 \
	VPSHUFB Y12, Y6, Y13                \
	VPXOR   Y13, aH, aH                 \
	VPXOR   Y12, Y15, Y15               \ // nibble 3: (high & 0xf0) >> 4
	VPSRLW  $4, Y15, Y15                \
	VPSHUFB Y15, Y3, Y13                \
	VPXOR   Y13, aL, aL                 \
	VPSHUFB Y15, Y7, Y13                \
	VPXOR   Y13, aH, aH

// GF16TABS broadcasts one term's eight nibble tables from off(DX).
#define GF16TABS(off) \
	VBROADCASTI128 off+0(DX), Y0    \
	VBROADCASTI128 off+16(DX), Y1   \
	VBROADCASTI128 off+32(DX), Y2   \
	VBROADCASTI128 off+48(DX), Y3   \
	VBROADCASTI128 off+64(DX), Y4   \
	VBROADCASTI128 off+80(DX), Y5   \
	VBROADCASTI128 off+96(DX), Y6   \
	VBROADCASTI128 off+112(DX), Y7

// GF16PLANARSTRIPTERM processes one whole strip (both 32-word halves) of
// one term: tables at off(DX), source strip at sreg.
#define GF16PLANARSTRIPTERM(sreg, off) \
	GF16TABS(off)                          \
	GF16DEINT(0, sreg, Y14, Y15, Y12, Y13) \
	GF16PLANARTERM(Y8, Y9)                 \
	GF16DEINT(64, sreg, Y14, Y15, Y12, Y13) \
	GF16PLANARTERM(Y10, Y11)

// func gf16AddMul2AVX2(dst *uint16, srcs **uint16, strips int, ts *nib16)
// dst[i] ^= c0*src0[i] ^ c1*src1[i] over strips*64 words.
TEXT ·gf16AddMul2AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ srcs+8(FP), AX
	MOVQ (AX), R8
	MOVQ 8(AX), R9
	MOVQ strips+16(FP), CX
	MOVQ ts+24(FP), DX

gf16addmul2_loop:
	GF16ZEROACC
	GF16PLANARSTRIPTERM(R8, 0)
	GF16PLANARSTRIPTERM(R9, 128)
	GF16REINT(0, Y8, Y9, Y12, Y13)
	GF16REINT(64, Y10, Y11, Y12, Y13)
	ADDQ $128, DI
	ADDQ $128, R8
	ADDQ $128, R9
	DECQ CX
	JNZ  gf16addmul2_loop
	VZEROUPPER
	RET

// func gf16AddMul4AVX2(dst *uint16, srcs **uint16, strips int, ts *nib16)
// dst[i] ^= c0*src0[i] ^ ... ^ c3*src3[i] over strips*64 words.
TEXT ·gf16AddMul4AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ srcs+8(FP), AX
	MOVQ (AX), R8
	MOVQ 8(AX), R9
	MOVQ 16(AX), R10
	MOVQ 24(AX), R11
	MOVQ strips+16(FP), CX
	MOVQ ts+24(FP), DX

gf16addmul4_loop:
	GF16ZEROACC
	GF16PLANARSTRIPTERM(R8, 0)
	GF16PLANARSTRIPTERM(R9, 128)
	GF16PLANARSTRIPTERM(R10, 256)
	GF16PLANARSTRIPTERM(R11, 384)
	GF16REINT(0, Y8, Y9, Y12, Y13)
	GF16REINT(64, Y10, Y11, Y12, Y13)
	ADDQ $128, DI
	ADDQ $128, R8
	ADDQ $128, R9
	ADDQ $128, R10
	ADDQ $128, R11
	DECQ CX
	JNZ  gf16addmul4_loop
	VZEROUPPER
	RET

// func gf16AddMulPlanarAVX2(dst, src *uint16, strips int, t *nib16)
// dst[i] ^= c*src[i] over strips*64 words — the single-source kernel in
// the fused kernels' byte-planar layout. With only one coefficient in
// play its eight tables are broadcast ONCE and stay resident in Y0-Y7
// for the whole call (the fused kernels must re-broadcast per strip),
// so a strip costs just the deinterleave, 2x20 planar-term ops and the
// reinterleave: ~36 ops per 32 words against ~54 on the interleaved
// GF16BLOCK path. Accumulator planes in Y8-Y11, transients Y12-Y15 —
// the same register budget as the fused kernels.
TEXT ·gf16AddMulPlanarAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ strips+16(FP), CX
	MOVQ t+24(FP), DX
	GF16TABS(0)

gf16planar_loop:
	GF16ZEROACC
	GF16DEINT(0, SI, Y14, Y15, Y12, Y13)
	GF16PLANARTERM(Y8, Y9)
	GF16DEINT(64, SI, Y14, Y15, Y12, Y13)
	GF16PLANARTERM(Y10, Y11)
	GF16REINT(0, Y8, Y9, Y12, Y13)
	GF16REINT(64, Y10, Y11, Y12, Y13)
	ADDQ $128, DI
	ADDQ $128, SI
	DECQ CX
	JNZ  gf16planar_loop
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
