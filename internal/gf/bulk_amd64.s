//go:build amd64 && !purego

#include "textflag.h"

// AVX2 block kernels over the nibble-split tables (see nibble.go for the
// table layout, which these kernels index by fixed byte offsets).
//
// GF(2^8), per 32-byte block (32 symbols):
//   c*s = lo[s&0xf] ^ hi[s>>4], one VPSHUFB per table half.
//
// GF(2^16), per 32-byte block (16 little-endian words): extract the four
// nibbles of every word in place — no byte deinterleave needed. For
// nibble k the index vector qk holds the nibble value in each word's low
// byte and zero in the high byte, so VPSHUFB against the 16-entry tables
// yields the contribution's low product bytes in even positions (and
// table[0] = 0 in odd ones); the high product bytes are shuffled the same
// way and moved into the odd positions with a word shift:
//   contribution_k = PSHUFB(lo[k], qk) ^ (PSHUFB(hi[k], qk) << 8)
//   c*s            = contribution_0 ^ ... ^ contribution_3

// 0x0f in every byte: per-byte nibble mask for the GF(2^8) kernels.
DATA byteNibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA byteNibMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL byteNibMask<>(SB), RODATA|NOPTR, $32

// 0x000f in every word: per-word nibble mask for the GF(2^16) kernels.
DATA wordNibMask<>+0x00(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x08(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x10(SB)/8, $0x000f000f000f000f
DATA wordNibMask<>+0x18(SB)/8, $0x000f000f000f000f
GLOBL wordNibMask<>(SB), RODATA|NOPTR, $32

// func gf8AddMulAVX2(dst, src *uint8, blocks int, t *nib8)
// dst[i] ^= c*src[i] over blocks*32 bytes.
TEXT ·gf8AddMulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	VBROADCASTI128 (DX), Y0      // lo nibble table in both lanes
	VBROADCASTI128 16(DX), Y1    // hi nibble table in both lanes
	VMOVDQU byteNibMask<>(SB), Y2

gf8addmul_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3           // low nibbles
	VPAND   Y2, Y4, Y4           // high nibbles
	VPSHUFB Y3, Y0, Y3           // lo[low nibble]
	VPSHUFB Y4, Y1, Y4           // hi[high nibble]
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf8addmul_loop
	VZEROUPPER
	RET

// func gf8MulAVX2(dst, src *uint8, blocks int, t *nib8)
// dst[i] = c*src[i] over blocks*32 bytes.
TEXT ·gf8MulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	VBROADCASTI128 (DX), Y0
	VBROADCASTI128 16(DX), Y1
	VMOVDQU byteNibMask<>(SB), Y2

gf8mul_loop:
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf8mul_loop
	VZEROUPPER
	RET

// gf16 kernel body shared by the add-mul and mul variants: computes
// c*src-block into Y12 from the block in Y9. Tables: Y0-Y3 = lo[0..3],
// Y4-Y7 = hi[0..3], Y8 = word nibble mask. Clobbers Y10, Y11.
#define GF16BLOCK \
	VPAND   Y8, Y9, Y10   \ // q0: nibble 0
	VPSHUFB Y10, Y0, Y12  \
	VPSHUFB Y10, Y4, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $4, Y9, Y10   \ // q1: nibble 1
	VPAND   Y8, Y10, Y10  \
	VPSHUFB Y10, Y1, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y5, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $8, Y9, Y10   \ // q2: nibble 2
	VPAND   Y8, Y10, Y10  \
	VPSHUFB Y10, Y2, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y6, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSRLW  $12, Y9, Y10  \ // q3: nibble 3 (shift clears all other bits)
	VPSHUFB Y10, Y3, Y11  \
	VPXOR   Y11, Y12, Y12 \
	VPSHUFB Y10, Y7, Y11  \
	VPSLLW  $8, Y11, Y11  \
	VPXOR   Y11, Y12, Y12

#define GF16LOADTABLES \
	VBROADCASTI128 (DX), Y0     \
	VBROADCASTI128 16(DX), Y1   \
	VBROADCASTI128 32(DX), Y2   \
	VBROADCASTI128 48(DX), Y3   \
	VBROADCASTI128 64(DX), Y4   \
	VBROADCASTI128 80(DX), Y5   \
	VBROADCASTI128 96(DX), Y6   \
	VBROADCASTI128 112(DX), Y7  \
	VMOVDQU wordNibMask<>(SB), Y8

// func gf16AddMulAVX2(dst, src *uint16, blocks int, t *nib16)
// dst[i] ^= c*src[i] over blocks*16 words.
TEXT ·gf16AddMulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	GF16LOADTABLES

gf16addmul_loop:
	VMOVDQU (SI), Y9
	GF16BLOCK
	VPXOR   (DI), Y12, Y12
	VMOVDQU Y12, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf16addmul_loop
	VZEROUPPER
	RET

// func gf16MulAVX2(dst, src *uint16, blocks int, t *nib16)
// dst[i] = c*src[i] over blocks*16 words.
TEXT ·gf16MulAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ blocks+16(FP), CX
	MOVQ t+24(FP), DX
	GF16LOADTABLES

gf16mul_loop:
	VMOVDQU (SI), Y9
	GF16BLOCK
	VMOVDQU Y12, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     gf16mul_loop
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
