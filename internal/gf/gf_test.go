package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableSanity256(t *testing.T) {
	f := GF256()
	if f.Size() != 256 {
		t.Fatalf("size = %d, want 256", f.Size())
	}
	seen := make(map[uint8]bool)
	for i := 0; i < 255; i++ {
		v := f.exp[i]
		if v == 0 {
			t.Fatalf("exp[%d] = 0", i)
		}
		if seen[v] {
			t.Fatalf("exp[%d] = %d repeats", i, v)
		}
		seen[v] = true
	}
	if len(seen) != 255 {
		t.Fatalf("exp covers %d nonzero elements, want 255", len(seen))
	}
}

func TestTableSanity65536(t *testing.T) {
	f := GF65536()
	if f.Size() != 65536 {
		t.Fatalf("size = %d, want 65536", f.Size())
	}
	// log/exp must be mutually inverse on all nonzero elements.
	for _, x := range []uint16{1, 2, 3, 255, 256, 1027, 65535} {
		if got := f.exp[f.log[x]]; got != x {
			t.Fatalf("exp[log[%d]] = %d", x, got)
		}
	}
}

// fieldAxioms checks the ring/field laws on concrete triples.
func fieldAxioms[E Elem](t *testing.T, f *Field[E], a, b, c E) {
	t.Helper()
	if f.Add(a, b) != f.Add(b, a) {
		t.Fatalf("%s: add not commutative for %d,%d", f.Name(), a, b)
	}
	if f.Mul(a, b) != f.Mul(b, a) {
		t.Fatalf("%s: mul not commutative for %d,%d", f.Name(), a, b)
	}
	if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
		t.Fatalf("%s: mul not associative for %d,%d,%d", f.Name(), a, b, c)
	}
	left := f.Mul(a, f.Add(b, c))
	right := f.Add(f.Mul(a, b), f.Mul(a, c))
	if left != right {
		t.Fatalf("%s: distributivity fails for %d,%d,%d: %d != %d", f.Name(), a, b, c, left, right)
	}
	if f.Mul(a, 1) != a {
		t.Fatalf("%s: 1 is not multiplicative identity for %d", f.Name(), a)
	}
	if f.Add(a, 0) != a {
		t.Fatalf("%s: 0 is not additive identity for %d", f.Name(), a)
	}
	if f.Add(a, a) != 0 {
		t.Fatalf("%s: characteristic is not 2 for %d", f.Name(), a)
	}
	if a != 0 {
		if f.Mul(a, f.Inv(a)) != 1 {
			t.Fatalf("%s: a*Inv(a) != 1 for %d", f.Name(), a)
		}
		if f.Div(f.Mul(a, b), a) != b {
			t.Fatalf("%s: (a*b)/a != b for %d,%d", f.Name(), a, b)
		}
	}
}

func TestAxioms256(t *testing.T) {
	f := GF256()
	err := quick.Check(func(a, b, c uint8) bool {
		fieldAxioms(t, f, a, b, c)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAxioms65536(t *testing.T) {
	f := GF65536()
	err := quick.Check(func(a, b, c uint16) bool {
		fieldAxioms(t, f, a, b, c)
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulExhaustiveAgainstSlowRef256(t *testing.T) {
	f := GF256()
	// Carry-less multiply + reduction, independent of the tables.
	slow := func(a, b uint16) uint8 {
		var acc uint32
		x := uint32(a)
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				acc ^= x << i
			}
		}
		for i := 15; i >= 8; i-- {
			if acc&(1<<i) != 0 {
				acc ^= uint32(Poly8) << (i - 8)
			}
		}
		return uint8(acc)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := f.Mul(uint8(a), uint8(b)), slow(uint16(a), uint16(b)); got != want {
				t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPow(t *testing.T) {
	for _, tc := range []struct {
		a    uint8
		k    int
		want uint8
	}{
		{0, 0, 1}, {0, 5, 0}, {1, 100, 1}, {2, 1, 2}, {2, 8, 0x1d},
	} {
		if got := GF256().Pow(tc.a, tc.k); got != tc.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", tc.a, tc.k, got, tc.want)
		}
	}
	// a^(size-1) == 1 for all nonzero a (Lagrange).
	f := GF65536()
	for _, a := range []uint16{1, 2, 3, 9999, 65535} {
		if got := f.Pow(a, f.Size()-1); got != 1 {
			t.Errorf("%d^(q-1) = %d, want 1", a, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	GF256().Inv(0)
}

func TestDivZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(x,0) did not panic")
		}
	}()
	GF65536().Div(3, 0)
}

func TestAddMulSliceMatchesScalar(t *testing.T) {
	f := GF65536()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64) + 1
		dst := make([]uint16, n)
		src := make([]uint16, n)
		for i := range dst {
			dst[i] = uint16(rng.Intn(65536))
			src[i] = uint16(rng.Intn(65536))
		}
		c := uint16(rng.Intn(65536))
		want := make([]uint16, n)
		for i := range want {
			want[i] = dst[i] ^ f.Mul(c, src[i])
		}
		f.AddMulSlice(dst, src, c)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d: AddMulSlice[%d] = %d, want %d (c=%d)", trial, i, dst[i], want[i], c)
			}
		}
	}
}

func TestAddMulSliceSpecialCases(t *testing.T) {
	f := GF256()
	dst := []uint8{1, 2, 3}
	f.AddMulSlice(dst, []uint8{9, 9, 9}, 0)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 3 {
		t.Fatalf("c=0 modified dst: %v", dst)
	}
	f.AddMulSlice(dst, []uint8{1, 1, 1}, 1)
	if dst[0] != 0 || dst[1] != 3 || dst[2] != 2 {
		t.Fatalf("c=1 gave %v, want XOR", dst)
	}
}

func TestAddMulSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	GF256().AddMulSlice(make([]uint8, 3), make([]uint8, 4), 1)
}

func TestMulSlice(t *testing.T) {
	f := GF256()
	dst := []uint8{0, 1, 7, 255}
	orig := append([]uint8(nil), dst...)
	f.MulSlice(dst, 1)
	for i := range dst {
		if dst[i] != orig[i] {
			t.Fatalf("MulSlice by 1 changed dst")
		}
	}
	f.MulSlice(dst, 0)
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("MulSlice by 0 gave %v", dst)
		}
	}
	dst = []uint8{3, 5}
	f.MulSlice(dst, 4)
	if dst[0] != f.Mul(3, 4) || dst[1] != f.Mul(5, 4) {
		t.Fatalf("MulSlice by 4 gave %v", dst)
	}
}

func TestDot(t *testing.T) {
	f := GF256()
	a := []uint8{1, 2, 0, 5}
	b := []uint8{7, 1, 9, 0}
	want := f.Mul(1, 7) ^ f.Mul(2, 1) ^ f.Mul(0, 9) ^ f.Mul(5, 0)
	if got := f.Dot(a, b); got != want {
		t.Fatalf("Dot = %d, want %d", got, want)
	}
}

func TestSymbolRoundTrip(t *testing.T) {
	b := []byte{0x12, 0x34, 0xab, 0xcd, 0x00, 0xff}
	s16 := Symbols16(b)
	if s16[0] != 0x1234 || s16[1] != 0xabcd || s16[2] != 0x00ff {
		t.Fatalf("Symbols16 = %v", s16)
	}
	if got := Bytes16(s16); string(got) != string(b) {
		t.Fatalf("Bytes16 round trip = %x, want %x", got, b)
	}
	s8 := Symbols8(b)
	if got := Bytes8(s8); string(got) != string(b) {
		t.Fatalf("Bytes8 round trip = %x, want %x", got, b)
	}
	// The conversions must copy, not alias.
	s8[0] = 0xEE
	if b[0] == 0xEE {
		t.Fatal("Symbols8 aliases its input")
	}
}

func TestSymbols16OddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd payload did not panic")
		}
	}()
	Symbols16([]byte{1, 2, 3})
}

func BenchmarkAddMulSliceGF256(b *testing.B) {
	f := GF256()
	dst := make([]uint8, 1024)
	src := make([]uint8, 1024)
	for i := range src {
		src[i] = uint8(i*37 + 11)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddMulSlice(dst, src, uint8(i)|1)
	}
}

func BenchmarkAddMulSliceGF65536(b *testing.B) {
	f := GF65536()
	dst := make([]uint16, 512)
	src := make([]uint16, 512)
	for i := range src {
		src[i] = uint16(i*4099 + 17)
	}
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.AddMulSlice(dst, src, uint16(i)|1)
	}
}

func TestMulSampledAgainstSlowRef65536(t *testing.T) {
	// Carry-less multiply + reduction with Poly16, independent of tables.
	slow := func(a, b uint32) uint16 {
		var acc uint64
		x := uint64(a)
		for i := 0; i < 16; i++ {
			if b&(1<<i) != 0 {
				acc ^= x << i
			}
		}
		for i := 31; i >= 16; i-- {
			if acc&(1<<i) != 0 {
				acc ^= uint64(Poly16) << (i - 16)
			}
		}
		return uint16(acc)
	}
	f := GF65536()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20000; trial++ {
		a := uint16(rng.Intn(65536))
		b := uint16(rng.Intn(65536))
		if got, want := f.Mul(a, b), slow(uint32(a), uint32(b)); got != want {
			t.Fatalf("Mul(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestInvExhaustive256(t *testing.T) {
	f := GF256()
	for a := 1; a < 256; a++ {
		if f.Mul(uint8(a), f.Inv(uint8(a))) != 1 {
			t.Fatalf("Inv(%d) wrong", a)
		}
	}
}
