package gf

import (
	"math/rand"
	"testing"
)

// Zero-allocation gates for the kernel hot paths. Every matrix
// elimination step and packet combination bottoms out here, so a single
// heap allocation per call (as the old function-pointer dispatch caused:
// escape analysis cannot see through an indirect call, so the stack
// nibble caches escaped) multiplies into per-round garbage across the
// whole system. The arch shims are direct calls precisely so these gates
// can hold; they must stay at zero on every build, purego included.

func testKernelAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	fn() // warm any lazily built field tables
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Errorf("%s allocates %v times per call, want 0", name, n)
	}
}

func TestKernelPathsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f8, f16 := GF256(), GF65536()

	const n = 1024
	const rows = 5
	d8 := make([]uint8, n)
	d16 := make([]uint16, n)
	s8 := make([][]uint8, rows)
	s16 := make([][]uint16, rows)
	c8 := make([]uint8, rows)
	c16 := make([]uint16, rows)
	e8 := make([][]uint8, rows)
	e16 := make([][]uint16, rows)
	for j := 0; j < rows; j++ {
		s8[j] = make([]uint8, n)
		s16[j] = make([]uint16, n)
		e8[j] = make([]uint8, n)
		e16[j] = make([]uint16, n)
		for i := 0; i < n; i++ {
			s8[j][i] = uint8(rng.Intn(256))
			s16[j][i] = uint16(rng.Intn(65536))
		}
		c8[j] = uint8(2 + j)
		c16[j] = uint16(40000 + j)
	}

	testKernelAllocs(t, "gf8 AddMulSlice", func() { f8.AddMulSlice(d8, s8[0], 7) })
	testKernelAllocs(t, "gf16 AddMulSlice", func() { f16.AddMulSlice(d16, s16[0], 7) })
	testKernelAllocs(t, "gf8 MulSlice", func() { f8.MulSlice(d8, 7) })
	testKernelAllocs(t, "gf16 MulSlice", func() { f16.MulSlice(d16, 7) })
	testKernelAllocs(t, "gf8 AddMulSlices", func() { f8.AddMulSlices(d8, s8, c8) })
	testKernelAllocs(t, "gf16 AddMulSlices", func() { f16.AddMulSlices(d16, s16, c16) })
	testKernelAllocs(t, "gf8 AddMulSlicesPerTerm", func() { f8.AddMulSlicesPerTerm(d8, s8, c8) })
	testKernelAllocs(t, "gf16 AddMulSlicesPerTerm", func() { f16.AddMulSlicesPerTerm(d16, s16, c16) })
	testKernelAllocs(t, "gf8 EliminateRows", func() { f8.EliminateRows(e8, s8[0], c8) })
	testKernelAllocs(t, "gf16 EliminateRows", func() { f16.EliminateRows(e16, s16[0], c16) })

	// Short slices stay on the generic layers; they must be clean too.
	testKernelAllocs(t, "gf16 AddMulSlice short", func() { f16.AddMulSlice(d16[:40], s16[0][:40], 7) })
	testKernelAllocs(t, "gf16 AddMulSlices short", func() {
		f16.AddMulSlices(d16[:40], [][]uint16{s16[0][:40], s16[1][:40]}, c16[:2])
	})
}
