//go:build amd64 && !purego

package gf

// amd64 backend: AVX2 block and strip kernels over the nibble-split
// tables (bulk_amd64.s). Each 32-byte block costs two shuffles for
// GF(2^8) and eight for GF(2^16), against one or two table loads per
// symbol on the generic layer; the fused multi-source kernels keep a
// 128-byte accumulator strip in registers across 2-4 terms.
//
// The arch* functions below are the dispatch shims the portable routing
// layer (bulk.go) calls directly. Direct calls matter: the kernels are
// declared //go:noescape, and escape analysis only propagates that
// through a static call chain — dispatching through function pointers
// (as this layer once did) makes every table and scratch argument
// escape, heap-allocating a nibble cache per call on the hot paths the
// zero-allocation tests now pin.

// pickKernels selects the widest kernel this CPU can run. Feature
// detection is done here once, at field construction, rather than per
// call; the arch shims are only reached when accel is true.
func pickKernels() kernels {
	if hasAVX2() {
		return kernels{name: "avx2", accel: true}
	}
	return kernels{name: "generic"}
}

// Single-source shims: blocks of kernelBlockBytes.

func archAddMul8(dst, src *uint8, blocks int, t *nib8)    { gf8AddMulAVX2(dst, src, blocks, t) }
func archMul8(dst, src *uint8, blocks int, t *nib8)       { gf8MulAVX2(dst, src, blocks, t) }
func archAddMul16(dst, src *uint16, blocks int, t *nib16) { gf16AddMulAVX2(dst, src, blocks, t) }
func archMul16(dst, src *uint16, blocks int, t *nib16)    { gf16MulAVX2(dst, src, blocks, t) }

// planar16 gates the byte-planar single-source GF(2^16) kernel: on amd64
// whole 128-byte strips of AddMul route through archAddMulPlanar16, which
// broadcasts the term's tables once and keeps them resident across every
// strip. Other arches keep the interleaved block kernels.
const planar16 = true

func archAddMulPlanar16(dst, src *uint16, strips int, t *nib16) {
	gf16AddMulPlanarAVX2(dst, src, strips, t)
}

// Fused multi-source shims: strips of fusedStripBytes; srcs points at an
// array of 2 or 4 source pointers, ts at as many contiguous nibble
// tables.

func archAddMul2x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	gf8AddMul2AVX2(dst, srcs, strips, ts)
}

func archAddMul4x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	gf8AddMul4AVX2(dst, srcs, strips, ts)
}

func archAddMul2x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	gf16AddMul2AVX2(dst, srcs, strips, ts)
}

func archAddMul4x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	gf16AddMul4AVX2(dst, srcs, strips, ts)
}

// hasAVX2 reports whether the CPU and OS support the AVX2 kernels:
// CPUID.1:ECX must advertise OSXSAVE and AVX, XCR0 must show the OS saves
// XMM and YMM state, and CPUID.7.0:EBX must advertise AVX2.
func hasAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// cpuidex executes CPUID with the given leaf and subleaf.
//
//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended control register describing which
// vector state the OS saves across context switches.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// The block kernels. Each processes exactly blocks*32 bytes; the routing
// layer in bulk.go guarantees blocks >= 1 and finishes tails portably.
// dst and src may be the same pointer (MulSlice runs in place) but must
// not partially overlap.
//
//go:noescape
func gf8AddMulAVX2(dst, src *uint8, blocks int, t *nib8)

//go:noescape
func gf8MulAVX2(dst, src *uint8, blocks int, t *nib8)

//go:noescape
func gf16AddMulAVX2(dst, src *uint16, blocks int, t *nib16)

//go:noescape
func gf16MulAVX2(dst, src *uint16, blocks int, t *nib16)

// The planar single-source strip kernel: strips*64 words, tables
// broadcast once per call. dst and src must not overlap (AddMul only).
//
//go:noescape
func gf16AddMulPlanarAVX2(dst, src *uint16, strips int, t *nib16)

// The fused strip kernels. Each processes exactly strips*128 bytes of
// the accumulator, reading the same span of every source; srcs and ts
// are arrays of 2 or 4 entries (stack scratch in the routing layer).
//
//go:noescape
func gf8AddMul2AVX2(dst *uint8, srcs **uint8, strips int, ts *nib8)

//go:noescape
func gf8AddMul4AVX2(dst *uint8, srcs **uint8, strips int, ts *nib8)

//go:noescape
func gf16AddMul2AVX2(dst *uint16, srcs **uint16, strips int, ts *nib16)

//go:noescape
func gf16AddMul4AVX2(dst *uint16, srcs **uint16, strips int, ts *nib16)
