package gf

import (
	"bytes"
	"testing"
)

// FuzzAddMulSlice differential-tests the dispatched bulk kernels against
// the portable generic layer over both fields, arbitrary payloads,
// coefficients, and slice alignments. The fuzzer owns the search for the
// length/alignment/coefficient combination the hand-written kernelLengths
// table missed; any divergence between layers is a crash.
//
// CI runs this both as a regular test (corpus replay, including under the
// purego tag) and as a short -fuzz smoke in the test job.
func FuzzAddMulSlice(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, byte(7), uint16(7), byte(0), byte(0))
	f.Add(bytes.Repeat([]byte{0xa5, 0x3c}, 200), byte(1), uint16(1), byte(1), byte(3))
	f.Add(bytes.Repeat([]byte{0xff}, 1024), byte(0xca), uint16(0x100b), byte(7), byte(2))
	f.Add(bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, 64), byte(0), uint16(0xffff), byte(3), byte(5))
	f.Fuzz(func(t *testing.T, data []byte, c8 byte, c16 uint16, dstOff, srcOff byte) {
		do, so := int(dstOff%8), int(srcOff%8)
		half := len(data) / 2

		// GF(2^8): first half is dst, second half src, shifted by the
		// fuzzed offsets to vary alignment.
		f8 := GF256()
		d8 := append(make([]uint8, do), data[:half]...)[do:]
		s8 := append(make([]uint8, so), data[half:half*2]...)[so:]
		want8 := append([]uint8(nil), d8...)
		f8.AddMulSliceGeneric(want8, s8, c8)
		got8 := append([]uint8(nil), d8...)
		f8.AddMulSlice(got8, s8, c8)
		if !bytes.Equal(want8, got8) {
			t.Fatalf("gf8 kernel %q diverges from generic (n=%d c=%d offs=%d/%d)\n got %v\nwant %v",
				f8.Kernel(), len(d8), c8, do, so, got8, want8)
		}
		f8.MulSliceGeneric(want8, c8)
		f8.MulSlice(got8, c8)
		if !bytes.Equal(want8, got8) {
			t.Fatalf("gf8 kernel %q MulSlice diverges from generic (n=%d c=%d)", f8.Kernel(), len(d8), c8)
		}

		// GF(2^16): reinterpret the same payload as symbols.
		f16 := GF65536()
		even := half &^ 1
		d16 := append(make([]uint16, do), Symbols16(data[:even])...)[do:]
		s16 := append(make([]uint16, so), Symbols16(data[even:even*2])...)[so:]
		want16 := append([]uint16(nil), d16...)
		f16.AddMulSliceGeneric(want16, s16, c16)
		got16 := append([]uint16(nil), d16...)
		f16.AddMulSlice(got16, s16, c16)
		for i := range want16 {
			if want16[i] != got16[i] {
				t.Fatalf("gf16 kernel %q diverges from generic (n=%d c=%d offs=%d/%d i=%d): got %d want %d",
					f16.Kernel(), len(d16), c16, do, so, i, got16[i], want16[i])
			}
		}
		f16.MulSliceGeneric(want16, c16)
		f16.MulSlice(got16, c16)
		for i := range want16 {
			if want16[i] != got16[i] {
				t.Fatalf("gf16 kernel %q MulSlice diverges from generic (n=%d c=%d i=%d)", f16.Kernel(), len(d16), c16, i)
			}
		}
	})
}
