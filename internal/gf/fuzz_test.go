package gf

import (
	"bytes"
	"testing"
)

// FuzzAddMulSlices differential-tests the fused AddMulSlices tiling —
// term grouping, strip kernels, portable tails, repeated/zero/one
// coefficient handling, table sharing — against a per-row loop of the
// generic layer, over both fields, arbitrary source counts (1..12),
// payloads, coefficients and alignments. Coefficients are derived from
// the payload bytes with forced collisions (every third source repeats
// the first coefficient, every fourth is 0 or 1), so the cache-sharing
// and skip paths are continuously exercised.
//
// CI runs this as corpus replay in the regular test job (including under
// the purego tag) and as a short -fuzz smoke alongside FuzzAddMulSlice.
func FuzzAddMulSlices(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, byte(3), byte(0), byte(0))
	f.Add(bytes.Repeat([]byte{0xa5, 0x3c, 0x11}, 200), byte(5), byte(1), byte(3))
	f.Add(bytes.Repeat([]byte{0xff}, 1500), byte(9), byte(7), byte(2))
	f.Add(bytes.Repeat([]byte{0x01, 0x00}, 257), byte(12), byte(4), byte(6))
	f.Fuzz(func(t *testing.T, data []byte, nsrc, dstOff, srcOff byte) {
		rows := 1 + int(nsrc%12)
		do, so := int(dstOff%8), int(srcOff%8)
		if len(data) < rows+2 {
			return
		}
		// Split data into one dst chunk and `rows` source chunks of equal
		// length; remaining bytes seed the coefficients.
		chunk := len(data) / (rows + 2)
		coefBytes := data[(rows+1)*chunk:]

		check := func(t *testing.T, f16 bool) {
			t.Helper()
			if f16 {
				n := chunk / 2
				f := GF65536()
				dst := append(make([]uint16, do), Symbols16(data[:n*2])...)[do:]
				srcs := make([][]uint16, rows)
				cs := make([]uint16, rows)
				for j := range srcs {
					srcs[j] = append(make([]uint16, so), Symbols16(data[(j+1)*chunk:(j+1)*chunk+n*2])...)[so:]
					cs[j] = fuzzCoeff16(coefBytes, j)
				}
				want := append([]uint16(nil), dst...)
				for j := range srcs {
					f.AddMulSliceGeneric(want, srcs[j], cs[j])
				}
				got := append([]uint16(nil), dst...)
				f.AddMulSlices(got, srcs, cs)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("gf16 kernel %q AddMulSlices diverges from generic (n=%d rows=%d offs=%d/%d i=%d): got %d want %d",
							f.Kernel(), n, rows, do, so, i, got[i], want[i])
					}
				}
				return
			}
			n := chunk
			f := GF256()
			dst := append(make([]uint8, do), data[:n]...)[do:]
			srcs := make([][]uint8, rows)
			cs := make([]uint8, rows)
			for j := range srcs {
				srcs[j] = append(make([]uint8, so), data[(j+1)*chunk:(j+2)*chunk]...)[so:]
				cs[j] = uint8(fuzzCoeff16(coefBytes, j))
			}
			want := append([]uint8(nil), dst...)
			for j := range srcs {
				f.AddMulSliceGeneric(want, srcs[j], cs[j])
			}
			got := append([]uint8(nil), dst...)
			f.AddMulSlices(got, srcs, cs)
			if !bytes.Equal(want, got) {
				t.Fatalf("gf8 kernel %q AddMulSlices diverges from generic (n=%d rows=%d offs=%d/%d)",
					f.Kernel(), n, rows, do, so)
			}
		}
		check(t, false)
		check(t, true)
	})
}

// fuzzCoeff16 derives source j's coefficient from the fuzz input with
// forced repeats and degenerate values.
func fuzzCoeff16(coefBytes []byte, j int) uint16 {
	at := func(k int) uint16 {
		if len(coefBytes) == 0 {
			return 7
		}
		b0 := coefBytes[(2*k)%len(coefBytes)]
		b1 := coefBytes[(2*k+1)%len(coefBytes)]
		return uint16(b0)<<8 | uint16(b1)
	}
	switch {
	case j > 0 && j%3 == 0:
		return at(0) // repeat the first coefficient
	case j%4 == 3:
		return uint16(j/4) % 2 // zero and one terms
	default:
		return at(j)
	}
}

// FuzzAddMulSlice differential-tests the dispatched single-source bulk
// kernels against the portable generic layer over both fields, arbitrary
// payloads, coefficients, and slice alignments. The fuzzer owns the
// search for the length/alignment/coefficient combination the
// hand-written kernelLengths table missed; any divergence between layers
// is a crash.
//
// CI runs this both as a regular test (corpus replay, including under the
// purego tag) and as a short -fuzz smoke in the test job.
func FuzzAddMulSlice(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, byte(7), uint16(7), byte(0), byte(0))
	f.Add(bytes.Repeat([]byte{0xa5, 0x3c}, 200), byte(1), uint16(1), byte(1), byte(3))
	f.Add(bytes.Repeat([]byte{0xff}, 1024), byte(0xca), uint16(0x100b), byte(7), byte(2))
	f.Add(bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, 64), byte(0), uint16(0xffff), byte(3), byte(5))
	f.Fuzz(func(t *testing.T, data []byte, c8 byte, c16 uint16, dstOff, srcOff byte) {
		do, so := int(dstOff%8), int(srcOff%8)
		half := len(data) / 2

		// GF(2^8): first half is dst, second half src, shifted by the
		// fuzzed offsets to vary alignment.
		f8 := GF256()
		d8 := append(make([]uint8, do), data[:half]...)[do:]
		s8 := append(make([]uint8, so), data[half:half*2]...)[so:]
		want8 := append([]uint8(nil), d8...)
		f8.AddMulSliceGeneric(want8, s8, c8)
		got8 := append([]uint8(nil), d8...)
		f8.AddMulSlice(got8, s8, c8)
		if !bytes.Equal(want8, got8) {
			t.Fatalf("gf8 kernel %q diverges from generic (n=%d c=%d offs=%d/%d)\n got %v\nwant %v",
				f8.Kernel(), len(d8), c8, do, so, got8, want8)
		}
		f8.MulSliceGeneric(want8, c8)
		f8.MulSlice(got8, c8)
		if !bytes.Equal(want8, got8) {
			t.Fatalf("gf8 kernel %q MulSlice diverges from generic (n=%d c=%d)", f8.Kernel(), len(d8), c8)
		}

		// GF(2^16): reinterpret the same payload as symbols.
		f16 := GF65536()
		even := half &^ 1
		d16 := append(make([]uint16, do), Symbols16(data[:even])...)[do:]
		s16 := append(make([]uint16, so), Symbols16(data[even:even*2])...)[so:]
		want16 := append([]uint16(nil), d16...)
		f16.AddMulSliceGeneric(want16, s16, c16)
		got16 := append([]uint16(nil), d16...)
		f16.AddMulSlice(got16, s16, c16)
		for i := range want16 {
			if want16[i] != got16[i] {
				t.Fatalf("gf16 kernel %q diverges from generic (n=%d c=%d offs=%d/%d i=%d): got %d want %d",
					f16.Kernel(), len(d16), c16, do, so, i, got16[i], want16[i])
			}
		}
		f16.MulSliceGeneric(want16, c16)
		f16.MulSlice(got16, c16)
		for i := range want16 {
			if want16[i] != got16[i] {
				t.Fatalf("gf16 kernel %q MulSlice diverges from generic (n=%d c=%d i=%d)", f16.Kernel(), len(d16), c16, i)
			}
		}
	})
}
