// Package gf implements arithmetic over the binary extension fields
// GF(2^8) and GF(2^16).
//
// Every construction in the secret-agreement protocol — the y/z/s packet
// combinations, erasure decoding, and the eavesdropper's rank computations —
// is linear algebra over one of these fields. The implementation uses the
// classic discrete-log / anti-log tables, which makes a multiplication two
// table lookups and an addition a XOR.
//
// The protocol defaults to GF(2^16) (symbols are uint16) because Cauchy
// matrix constructions need as many distinct field points as the sum of the
// matrix dimensions; GF(2^8) caps that sum at 256, which a large round can
// exceed. GF(2^8) is provided both for small configurations and so that the
// field-size ablation bench can compare kernel throughput.
package gf

import (
	"fmt"
	"sync"
)

// Elem is the set of symbol types a Field can be instantiated with.
// uint8 corresponds to GF(2^8), uint16 to GF(2^16).
type Elem interface {
	~uint8 | ~uint16
}

// Irreducible polynomials (low bits; the implicit leading term is x^deg).
const (
	// Poly8 is x^8 + x^4 + x^3 + x^2 + 1, the polynomial used by most
	// Reed-Solomon deployments; 2 is a primitive element.
	Poly8 = 0x11d
	// Poly16 is x^16 + x^12 + x^3 + x + 1; 2 is a primitive element.
	Poly16 = 0x1100b
)

// Field holds the log/exp tables for one binary extension field.
// A Field is immutable after construction and safe for concurrent use.
type Field[E Elem] struct {
	name string
	size int     // number of field elements (2^m)
	poly int     // the field's irreducible polynomial (incl. leading term)
	exp  []E     // length 2*(size-1); exp[i] = g^i, doubled to skip a mod
	log  []int32 // length size; log[0] unused (set to -1)
	// mul8 is the full 256x256 product table, built only for GF(2^8)
	// (64 KiB); mul8[a<<8|b] = a*b. It makes the bulk kernels a single
	// unconditional lookup per symbol. GF(2^16) would need 8 GiB, so its
	// kernels build small per-coefficient product rows instead (bulk.go).
	mul8 []E
	// kern holds the block kernels the arch-dispatch layer selected for
	// this CPU at construction time (bulk_amd64.go / bulk_arm64.go /
	// bulk_generic.go); nil entries fall back to the generic layer.
	kern kernels
}

// Name returns a human-readable field name such as "GF(2^8)".
func (f *Field[E]) Name() string { return f.name }

// Size returns the number of elements in the field (2^m).
func (f *Field[E]) Size() int { return f.size }

// Kernel names the bulk-kernel backend the arch-dispatch layer selected at
// construction ("avx2", "generic", ...). Benchmarks and diagnostics use it
// to label throughput numbers.
func (f *Field[E]) Kernel() string { return f.kern.name }

// newField builds the tables for the field of the given size using the
// given irreducible polynomial. It panics if 2 is not primitive for the
// polynomial, which would be a programming error in this package.
func newField[E Elem](name string, size, poly int) *Field[E] {
	f := &Field[E]{
		name: name,
		size: size,
		poly: poly,
		exp:  make([]E, 2*(size-1)),
		log:  make([]int32, size),
		kern: pickKernels(),
	}
	f.log[0] = -1
	x := 1
	for i := 0; i < size-1; i++ {
		if x == 1 && i > 0 {
			panic(fmt.Sprintf("gf: generator 2 is not primitive for %s poly %#x", name, poly))
		}
		f.exp[i] = E(x)
		f.exp[i+size-1] = E(x)
		f.log[x] = int32(i)
		x <<= 1
		if x >= size {
			x ^= poly
		}
	}
	if x != 1 {
		panic(fmt.Sprintf("gf: table generation did not cycle for %s poly %#x", name, poly))
	}
	if size == 256 {
		f.mul8 = make([]E, 256*256)
		for a := 1; a < 256; a++ {
			row := f.mul8[a<<8 : a<<8+256]
			la := int(f.log[a])
			for b := 1; b < 256; b++ {
				row[b] = f.exp[la+int(f.log[b])]
			}
		}
	}
	return f
}

var (
	gf256   = sync.OnceValue(func() *Field[uint8] { return newField[uint8]("GF(2^8)", 256, Poly8) })
	gf65536 = sync.OnceValue(func() *Field[uint16] { return newField[uint16]("GF(2^16)", 65536, Poly16) })
)

// GF256 returns the shared GF(2^8) instance.
func GF256() *Field[uint8] { return gf256() }

// GF65536 returns the shared GF(2^16) instance.
func GF65536() *Field[uint16] { return gf65536() }

// Add returns a + b. In characteristic 2 addition and subtraction are both
// XOR.
func (f *Field[E]) Add(a, b E) E { return a ^ b }

// Mul returns a * b.
func (f *Field[E]) Mul(a, b E) E {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[int(f.log[a])+int(f.log[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero;
// callers are responsible for never inverting zero (the matrix routines
// check pivots before dividing).
func (f *Field[E]) Inv(a E) E {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return f.exp[(f.size-1)-int(f.log[a])]
}

// Div returns a / b. It panics if b is zero.
func (f *Field[E]) Div(a, b E) E {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(f.log[a]) - int(f.log[b])
	if d < 0 {
		d += f.size - 1
	}
	return f.exp[d]
}

// Pow returns a^k for k >= 0, with a^0 == 1 (including 0^0 == 1, the usual
// convention for evaluation of polynomials written in coefficient form).
func (f *Field[E]) Pow(a E, k int) E {
	if k < 0 {
		panic("gf: negative exponent")
	}
	if k == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.exp[(int(f.log[a])*k)%(f.size-1)]
}

// Dot returns the inner product of two equal-length vectors.
func (f *Field[E]) Dot(a, b []E) E {
	if len(a) != len(b) {
		panic("gf: Dot length mismatch")
	}
	var acc E
	if f.mul8 != nil {
		m := f.mul8
		for i, x := range a {
			acc ^= m[int(x)<<8|int(b[i])]
		}
		return acc
	}
	exp, log := f.exp, f.log
	for i, x := range a {
		y := b[i]
		if x != 0 && y != 0 {
			acc ^= exp[int(log[x])+int(log[y])]
		}
	}
	return acc
}
