package gf

import "testing"

func TestDispatchCountingOffByDefault(t *testing.T) {
	before := ReadDispatchCounts()
	f := GF65536()
	dst := make([]uint16, 256)
	src := make([]uint16, 256)
	f.AddMulSlices(dst, [][]uint16{src}, []uint16{3})
	f.EliminateRows([][]uint16{dst}, src, []uint16{3})
	after := ReadDispatchCounts()
	if after != before {
		t.Fatalf("counters moved while counting disabled: %+v -> %+v", before, after)
	}
}

func TestDispatchCountingCounts(t *testing.T) {
	SetDispatchCounting(true)
	defer SetDispatchCounting(false)
	before := ReadDispatchCounts()
	f := GF65536()
	dst := make([]uint16, 256) // ≥ fusedMin16, so the accel build fuses
	src := make([]uint16, 256)
	f.AddMulSlices(dst, [][]uint16{src, src}, []uint16{3, 7})
	f.EliminateRows([][]uint16{dst}, src, []uint16{3})
	after := ReadDispatchCounts()
	if got := after.AddMulSlices - before.AddMulSlices; got != 1 {
		t.Fatalf("AddMulSlices delta = %d, want 1", got)
	}
	if got := after.EliminateRows - before.EliminateRows; got != 1 {
		t.Fatalf("EliminateRows delta = %d, want 1", got)
	}
	fusedDelta := after.AddMulSlicesFused - before.AddMulSlicesFused
	if fusedDelta > 1 {
		t.Fatalf("fused delta = %d, want 0 or 1", fusedDelta)
	}
	if f.Kernel() != "generic" && fusedDelta != 1 {
		t.Fatalf("accelerated %s kernel did not count a fused pass", f.Kernel())
	}
}

// The counting gate must keep the disabled batched path allocation-free,
// like every other dispatch gate in this package.
func TestDispatchGateZeroAlloc(t *testing.T) {
	f := GF65536()
	dst := make([]uint16, 256)
	src := make([]uint16, 256)
	srcs := [][]uint16{src}
	cs := []uint16{3}
	f.AddMulSlices(dst, srcs, cs) // warm tables
	if n := testing.AllocsPerRun(100, func() {
		f.AddMulSlices(dst, srcs, cs)
	}); n != 0 {
		t.Errorf("AddMulSlices with counting off allocates %v times per run", n)
	}
}
