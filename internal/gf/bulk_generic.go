//go:build purego || (!amd64 && !arm64)

package gf

// pickKernels on platforms without an accelerated backend — or on any
// platform when built with the `purego` tag, the escape hatch for
// debugging a suspected kernel miscompare or for auditing exactly the code
// that runs — selects no block kernels. The routing layer then stays on
// the portable generic paths: the full product table for GF(2^8), split
// product rows for GF(2^16).
func pickKernels() kernels { return kernels{name: "generic"} }
