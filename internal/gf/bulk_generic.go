//go:build purego || (!amd64 && !arm64)

package gf

// pickKernels on platforms without an accelerated backend — or on any
// platform when built with the `purego` tag, the escape hatch for
// debugging a suspected kernel miscompare or for auditing exactly the code
// that runs — selects no block kernels. The routing layer then stays on
// the portable generic paths: the full product table for GF(2^8), split
// product rows for GF(2^16), and per-term passes for the batched entry
// points.
func pickKernels() kernels { return kernels{name: "generic"} }

// The arch shim stubs below exist so the portable routing layer links on
// every build; kernels.accel is always false here, so they are
// unreachable.

func archAddMul8(dst, src *uint8, blocks int, t *nib8)    { panic("gf: no arch kernel") }
func archMul8(dst, src *uint8, blocks int, t *nib8)       { panic("gf: no arch kernel") }
func archAddMul16(dst, src *uint16, blocks int, t *nib16) { panic("gf: no arch kernel") }
func archMul16(dst, src *uint16, blocks int, t *nib16)    { panic("gf: no arch kernel") }

const planar16 = false

func archAddMulPlanar16(dst, src *uint16, strips int, t *nib16) { panic("gf: no arch kernel") }

func archAddMul2x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	panic("gf: no arch kernel")
}

func archAddMul4x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	panic("gf: no arch kernel")
}

func archAddMul2x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	panic("gf: no arch kernel")
}

func archAddMul4x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	panic("gf: no arch kernel")
}
