package gf

import "encoding/binary"

// SymbolsPerByte conversions: packet payloads travel as bytes but all
// coding operates on field symbols. GF(2^8) symbols map one-to-one onto
// bytes; GF(2^16) symbols pack two big-endian bytes each (payloads with odd
// length are zero-padded by the caller before conversion).

// Symbols16 converts a byte payload into GF(2^16) symbols. The payload
// length must be even.
func Symbols16(b []byte) []uint16 {
	if len(b)%2 != 0 {
		panic("gf: Symbols16 requires an even-length payload")
	}
	out := make([]uint16, len(b)/2)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(b[2*i:])
	}
	return out
}

// Bytes16 converts GF(2^16) symbols back into a byte payload.
func Bytes16(s []uint16) []byte {
	out := make([]byte, 2*len(s))
	for i, v := range s {
		binary.BigEndian.PutUint16(out[2*i:], v)
	}
	return out
}

// Symbols8 converts a byte payload into GF(2^8) symbols (a copy).
func Symbols8(b []byte) []uint8 {
	out := make([]uint8, len(b))
	copy(out, b)
	return out
}

// Bytes8 converts GF(2^8) symbols back into a byte payload (a copy).
func Bytes8(s []uint8) []byte {
	out := make([]byte, len(s))
	copy(out, s)
	return out
}
