//go:build arm64 && !purego

package gf

// pickKernels is the arm64 dispatch point. The nib8/nib16 table layout is
// deliberately sized for NEON: one 16-entry table is one TBL source
// register, so an arm64 backend mirrors bulk_amd64.s instruction for
// instruction (TBL for VPSHUFB, USHR/AND for the nibble extraction), and
// the fused strip kernels translate the same way — NEON's 32 vector
// registers actually fit both GF(2^16) terms' tables resident, where AVX2
// has to rebroadcast per strip. No NEON assembly is wired yet — shipping
// vector kernels this repository's CI can only compile, never execute,
// would be an untested-correctness hazard — so dispatch selects the
// portable generic layer. A NEON backend plugs in here exactly like the
// avx2 one: return kernels{name: "neon", accel: true} and route the
// arch* shims below to the NEON routines (single-source blocks of
// kernelBlockBytes, fused strips of fusedStripBytes).
func pickKernels() kernels { return kernels{name: "generic"} }

// Arch shim stubs; unreachable while pickKernels selects generic.

func archAddMul8(dst, src *uint8, blocks int, t *nib8)    { panic("gf: no arch kernel") }
func archMul8(dst, src *uint8, blocks int, t *nib8)       { panic("gf: no arch kernel") }
func archAddMul16(dst, src *uint16, blocks int, t *nib16) { panic("gf: no arch kernel") }
func archMul16(dst, src *uint16, blocks int, t *nib16)    { panic("gf: no arch kernel") }

// No planar single-source kernel without NEON; the routing layer keeps
// the interleaved block path (unreachable while accel is false anyway).
const planar16 = false

func archAddMulPlanar16(dst, src *uint16, strips int, t *nib16) { panic("gf: no arch kernel") }

func archAddMul2x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	panic("gf: no arch kernel")
}

func archAddMul4x8(dst *uint8, srcs **uint8, strips int, ts *nib8) {
	panic("gf: no arch kernel")
}

func archAddMul2x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	panic("gf: no arch kernel")
}

func archAddMul4x16(dst *uint16, srcs **uint16, strips int, ts *nib16) {
	panic("gf: no arch kernel")
}
