//go:build arm64 && !purego

package gf

// pickKernels is the arm64 dispatch point. The nib8/nib16 table layout is
// deliberately sized for NEON: one 16-entry table is one TBL source
// register, so an arm64 backend mirrors bulk_amd64.s instruction for
// instruction (TBL for VPSHUFB, USHR/AND for the nibble extraction). No
// NEON assembly is wired yet — shipping vector kernels this repository's
// CI can only compile, never execute, would be an untested-correctness
// hazard — so dispatch selects the portable generic layer. A NEON backend
// plugs in here exactly like the avx2 one: return kernels{name: "neon",
// addMul8: ..., mul8: ..., addMul16: ..., mul16: ...}.
func pickKernels() kernels { return kernels{name: "generic"} }
