// Package figures regenerates every figure and headline number of the
// paper's §4 evaluation. It is the single source used by
// cmd/thinair-bench and the root bench suite.
package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/testbed"
	"repro/internal/unicast"
)

// Every sweep in this package — placements, Monte-Carlo sessions,
// ablation cells — is evaluated on the internal/sweep worker pool. Jobs
// derive their seeds from (base seed, job index) with the package's
// historical linear formulas (so published tables keep their values), and
// partial results are folded in enumeration order, which makes every
// table byte-identical for any worker count.

// ---------------------------------------------------------------------------
// Figure 1: maximum efficiency vs erasure probability.

// Fig1Point is one (n, p) evaluation of the two algorithms.
type Fig1Point struct {
	P       float64
	Group   float64
	Unicast float64
}

// Fig1Curve is one group-size curve of Figure 1.
type Fig1Curve struct {
	N      int // 0 means the n -> ∞ limit
	Points []Fig1Point
}

// Figure1 computes the analytic curves for the given group sizes (use 0
// for the infinite limit) over a uniform grid of erasure probabilities.
func Figure1(ns []int, steps int) []Fig1Curve {
	if steps < 2 {
		steps = 21
	}
	out := make([]Fig1Curve, 0, len(ns))
	for _, n := range ns {
		c := Fig1Curve{N: n}
		for i := 0; i <= steps; i++ {
			p := float64(i) / float64(steps)
			pt := Fig1Point{P: p}
			if n == 0 {
				pt.Group = analytic.GroupEfficiencyInf(p)
				pt.Unicast = analytic.UnicastEfficiencyInf(p)
			} else {
				pt.Group = analytic.GroupEfficiency(n, p)
				pt.Unicast = analytic.UnicastEfficiency(n, p)
			}
			c.Points = append(c.Points, pt)
		}
		out = append(out, c)
	}
	return out
}

// FormatFigure1 renders the curves as the text analogue of Figure 1.
func FormatFigure1(curves []Fig1Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — maximum efficiency vs erasure probability\n")
	fmt.Fprintf(&b, "(continuous = group algorithm, dashed = unicast baseline)\n\n")
	fmt.Fprintf(&b, "%6s", "p")
	for _, c := range curves {
		label := "inf"
		if c.N > 0 {
			label = fmt.Sprintf("%d", c.N)
		}
		fmt.Fprintf(&b, "  grp(n=%-3s  uni(n=%-3s", label+")", label+")")
	}
	b.WriteByte('\n')
	for i := range curves[0].Points {
		fmt.Fprintf(&b, "%6.2f", curves[0].Points[i].P)
		for _, c := range curves {
			fmt.Fprintf(&b, "  %10.4f  %10.4f", c.Points[i].Group, c.Points[i].Unicast)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig1MCPoint cross-validates one (n, p) analytic value against a
// Monte-Carlo run of the actual protocol with oracle estimates and exact
// reception classes. Measured efficiency is in packet accounting
// (secret packets / (x-packets + z-packets)), matching the analytic
// model's no-control-overhead normalization.
type Fig1MCPoint struct {
	N        int
	P        float64
	Analytic float64 // all-classes closed form (what the protocol implements)
	Measured float64
	Sessions int
}

// Figure1MonteCarlo runs the protocol on symmetric erasure channels and
// reports measured vs analytic efficiency. Sessions fan out over workers
// goroutines (0 = one per CPU); the result is identical for any count.
func Figure1MonteCarlo(ns []int, ps []float64, xPerRound, sessions, workers int, seed int64) []Fig1MCPoint {
	type job struct {
		n int
		p float64
		s int
	}
	var jobs []job
	for _, n := range ns {
		for _, p := range ps {
			for s := 0; s < sessions; s++ {
				jobs = append(jobs, job{n: n, p: p, s: s})
			}
		}
	}
	type tally struct {
		secret, spent int64
	}
	tallies, err := sweep.Run(workers, len(jobs), func(i int) (tally, error) {
		j := jobs[i]
		cfg := core.Config{
			Terminals: j.n, XPerRound: xPerRound, PayloadBytes: 8,
			Estimator: core.Oracle{}, Pooling: core.ExactPooling{},
			Seed: seed + int64(j.s)*31 + int64(j.n)*1009,
		}
		med := radio.NewMedium(radio.Uniform{P: j.p}, j.n+1, seed+int64(j.s)*977+int64(j.n))
		res, err := core.RunSession(cfg, med, []radio.NodeID{radio.NodeID(j.n)})
		if err != nil {
			return tally{}, err
		}
		var t tally
		for _, ri := range res.Rounds {
			t.secret += int64(ri.L)
			t.spent += int64(ri.NumX + ri.M - ri.L)
		}
		return t, nil
	})
	if err != nil {
		panic(err) // static configs; cannot fail
	}
	var out []Fig1MCPoint
	i := 0
	for _, n := range ns {
		for _, p := range ps {
			var secret, spent int64
			for s := 0; s < sessions; s++ {
				secret += tallies[i].secret
				spent += tallies[i].spent
				i++
			}
			pt := Fig1MCPoint{
				N: n, P: p, Sessions: sessions,
				Analytic: analytic.GroupEfficiencyAllClasses(n, p),
			}
			if spent > 0 {
				pt.Measured = float64(secret) / float64(spent)
			}
			out = append(out, pt)
		}
	}
	return out
}

// FormatFigure1MC renders the Monte-Carlo cross-validation table.
func FormatFigure1MC(pts []Fig1MCPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 cross-validation — protocol (oracle, exact classes) vs analytic\n\n")
	fmt.Fprintf(&b, "%4s %6s %10s %10s %8s\n", "n", "p", "analytic", "measured", "ratio")
	for _, pt := range pts {
		ratio := math.NaN()
		if pt.Analytic > 0 {
			ratio = pt.Measured / pt.Analytic
		}
		fmt.Fprintf(&b, "%4d %6.2f %10.4f %10.4f %8.3f\n", pt.N, pt.P, pt.Analytic, pt.Measured, ratio)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figure 2: reliability vs number of terminals on the testbed.

// Fig2Options parameterizes the testbed sweep.
type Fig2Options struct {
	// Ns lists the group sizes; nil means the paper's 3..8.
	Ns []int
	// XPerRound, Rounds, PayloadBytes override the §4-like defaults
	// (90 x-packets over 9 slots, 3 rotating rounds, 100-byte packets).
	XPerRound    int
	Rounds       int
	PayloadBytes int
	// MaxPlacements bounds the per-n placement count (0 = every
	// placement, as the paper runs it).
	MaxPlacements int
	// Workers is the number of experiments evaluated concurrently
	// (0 = one per CPU). Output is byte-identical for any value.
	Workers int
	Seed    int64
	Channel *testbed.Channel
}

func (o *Fig2Options) fill() {
	if len(o.Ns) == 0 {
		o.Ns = []int{3, 4, 5, 6, 7, 8}
	}
	if o.XPerRound == 0 {
		o.XPerRound = 90
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	if o.PayloadBytes == 0 {
		o.PayloadBytes = 100
	}
	if o.Channel == nil {
		ch := testbed.DefaultChannel()
		o.Channel = &ch
	}
}

// Figure2 runs the placement sweep for every group size. The full
// (group size, placement) product is sharded over ONE worker pool: for
// small per-n placement counts (n = 8 has only 9) a within-n fan-out
// would leave most cores idle between group sizes. Per-placement seeds
// depend only on (Seed, within-n placement index), and cells are folded
// per group size in enumeration order, so the tables stay byte-identical
// to the per-n sweep for any worker count.
func Figure2(opt Fig2Options) ([]*testbed.SweepResult, error) {
	opt.fill()
	sopt := testbed.SweepOptions{
		Protocol: core.Config{
			XPerRound:    opt.XPerRound,
			PayloadBytes: opt.PayloadBytes,
			Rounds:       opt.Rounds,
			Rotate:       true,
		},
		Channel: *opt.Channel,
		Seed:    opt.Seed,
	}
	type job struct {
		ni int // index into opt.Ns
		pi int // placement index within that group size
	}
	placements := make([][]testbed.Placement, len(opt.Ns))
	var jobs []job
	for ni, n := range opt.Ns {
		placements[ni] = testbed.SubsamplePlacements(testbed.EnumeratePlacements(n), opt.MaxPlacements)
		for pi := range placements[ni] {
			jobs = append(jobs, job{ni: ni, pi: pi})
		}
	}
	cells, err := sweep.Run(opt.Workers, len(jobs), func(i int) (testbed.SweepCell, error) {
		j := jobs[i]
		return testbed.EvalPlacement(opt.Ns[j.ni], sopt, placements[j.ni][j.pi], j.pi)
	})
	if err != nil {
		return nil, err
	}
	out := make([]*testbed.SweepResult, 0, len(opt.Ns))
	i := 0
	for ni, n := range opt.Ns {
		out = append(out, testbed.FoldSweep(n, cells[i:i+len(placements[ni])]))
		i += len(placements[ni])
	}
	return out, nil
}

// FormatFigure2 renders the sweep as the text analogue of Figure 2.
func FormatFigure2(rows []*testbed.SweepResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — reliability vs number of terminals\n")
	fmt.Fprintf(&b, "(min = diamonds, 95th pct = triangles, average = circles, 50th pct = squares)\n\n")
	fmt.Fprintf(&b, "%4s %6s %9s %8s %8s %8s %8s %10s %9s\n",
		"n", "exps", "noSecret", "min", "p95", "avg", "p50", "minEff", "minKbps")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %6d %9d %8.3f %8.3f %8.3f %8.3f %10.4f %9.1f\n",
			r.N, r.Experiments, r.NoSecret,
			r.Reliability.Min, r.Reliability.P95, r.Reliability.Mean, r.Reliability.P50,
			r.Efficiency.Min, r.MinKbps)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Headline: n = 8 efficiency and secret rate.

// HeadlineResult carries the paper's §4 headline numbers for n = 8.
type HeadlineResult struct {
	Sweep *testbed.SweepResult
	// MinEfficiency and MinKbps correspond to "minimum efficiency 0.038;
	// given that the terminals transmit at 1 Mbps, this efficiency yields
	// 38 secret Kbps".
	MinEfficiency float64
	MinKbps       float64
	// MinReliability corresponds to "for n = 8 terminals, we achieve
	// minimum reliability rmin = 1".
	MinReliability float64
}

// Headline runs the full n = 8 placement set.
func Headline(opt Fig2Options) (*HeadlineResult, error) {
	opt.Ns = []int{8}
	rows, err := Figure2(opt)
	if err != nil {
		return nil, err
	}
	r := rows[0]
	return &HeadlineResult{
		Sweep:          r,
		MinEfficiency:  r.Efficiency.Min,
		MinKbps:        r.MinKbps,
		MinReliability: r.Reliability.Min,
	}, nil
}

// FormatHeadline renders the headline comparison against the paper.
func FormatHeadline(h *HeadlineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline (n = 8, all %d placements)\n\n", h.Sweep.Experiments)
	fmt.Fprintf(&b, "%-28s %12s %12s\n", "metric", "paper", "measured")
	fmt.Fprintf(&b, "%-28s %12.3f %12.4f\n", "minimum efficiency", 0.038, h.MinEfficiency)
	fmt.Fprintf(&b, "%-28s %12.1f %12.1f\n", "secret kbps at 1 Mbps", 38.0, h.MinKbps)
	fmt.Fprintf(&b, "%-28s %12.1f %12.3f\n", "minimum reliability", 1.0, h.MinReliability)
	return b.String()
}

// ---------------------------------------------------------------------------
// Rotation worst-case check (§3.2).

// RotationResult reports how often Eve covered a terminal (received a
// superset of its x-packets) with and without leader rotation.
type RotationResult struct {
	Experiments        int
	RoundsTotal        int
	RoundsEveCovered   int // rounds with >= 1 covered terminal
	SessionsAllCovered int // sessions where EVERY round had a covered terminal
	// MeanMaxOverlap averages, over rounds, the worst per-terminal
	// fraction of received packets Eve also got (1.0 = worst case).
	MeanMaxOverlap float64
	// SessionRisk averages, over sessions, the minimum over rounds of
	// MaxEveOverlap: how exposed a session remains even in its BEST
	// round. Rotation drives this down because Eve cannot sit next to
	// every leader at once.
	SessionRisk float64
}

// RotationCheck measures the §3.2 worst case across the n-terminal
// placement set.
func RotationCheck(n int, rotate bool, opt Fig2Options) (*RotationResult, error) {
	opt.fill()
	placements := testbed.SubsamplePlacements(testbed.EnumeratePlacements(n), opt.MaxPlacements)
	type cell struct {
		rounds, covered int
		allCovered      bool
		overlapSum      float64
		best            float64
	}
	cells, err := sweep.Run(opt.Workers, len(placements), func(i int) (cell, error) {
		ex := &testbed.Experiment{
			Placement: placements[i],
			Channel:   *opt.Channel,
			Protocol: core.Config{
				XPerRound:    opt.XPerRound,
				PayloadBytes: opt.PayloadBytes,
				Rounds:       opt.Rounds,
				Rotate:       rotate,
				Estimator:    core.Oracle{},
			},
			Seed: opt.Seed + int64(i)*37199 + 5,
		}
		res, err := ex.Run()
		if err != nil {
			return cell{}, err
		}
		c := cell{allCovered: true, best: math.Inf(1)}
		for _, ri := range res.Rounds {
			c.rounds++
			c.overlapSum += ri.MaxEveOverlap
			if ri.MaxEveOverlap < c.best {
				c.best = ri.MaxEveOverlap
			}
			if ri.EveCoveredTerminals > 0 {
				c.covered++
			} else {
				c.allCovered = false
			}
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	out := &RotationResult{Experiments: len(placements)}
	var overlapSum, riskSum float64
	for _, c := range cells {
		out.RoundsTotal += c.rounds
		out.RoundsEveCovered += c.covered
		overlapSum += c.overlapSum
		if c.allCovered {
			out.SessionsAllCovered++
		}
		if !math.IsInf(c.best, 1) {
			riskSum += c.best
		}
	}
	if out.RoundsTotal > 0 {
		out.MeanMaxOverlap = overlapSum / float64(out.RoundsTotal)
	}
	if out.Experiments > 0 {
		out.SessionRisk = riskSum / float64(out.Experiments)
	}
	return out, nil
}

// FormatRotation renders the worst-case comparison.
func FormatRotation(with, without *RotationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Worst-case avoidance (§3.2): rounds where Eve overheard a superset\n")
	fmt.Fprintf(&b, "of some terminal's x-packets, with and without leader rotation\n\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %16s %12s %12s\n", "", "rounds", "covered", "sessions stuck", "meanOverlap", "sessionRisk")
	fmt.Fprintf(&b, "%-22s %12d %12d %16d %12.3f %12.3f\n", "rotation ON", with.RoundsTotal, with.RoundsEveCovered, with.SessionsAllCovered, with.MeanMaxOverlap, with.SessionRisk)
	fmt.Fprintf(&b, "%-22s %12d %12d %16d %12.3f %12.3f\n", "rotation OFF", without.RoundsTotal, without.RoundsEveCovered, without.SessionsAllCovered, without.MeanMaxOverlap, without.SessionRisk)
	return b.String()
}

// ---------------------------------------------------------------------------
// Ablations.

// AblationRow is one configuration's aggregate outcome on the testbed.
type AblationRow struct {
	Name          string
	MeanEff       float64
	MinReliab     float64
	P50Reliab     float64
	MeanReliab    float64
	NoSecretCount int
}

// AblationEstimators compares estimators at a fixed group size.
func AblationEstimators(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	ests := []core.Estimator{
		core.Oracle{},
		core.FixedDelta{Delta: 0.45},
		core.LeaveOneOut{},
		core.LeaveOneOut{Conditional: true},
		core.KSubset{K: 2},
	}
	var rows []AblationRow
	for _, est := range ests {
		row, err := runAblation(est.Name(), n, opt, func(cfg *core.Config) { cfg.Estimator = est })
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// AblationAllocation compares pooling policies at a fixed group size.
func AblationAllocation(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	pools := []core.Pooling{
		core.BalancedPooling{},
		core.BalancedPooling{UsePairs: true},
		core.ExactPooling{},
	}
	var rows []AblationRow
	for _, p := range pools {
		row, err := runAblation(p.Name(), n, opt, func(cfg *core.Config) { cfg.Pooling = p })
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	// Unicast baseline on the same channel for context.
	row, err := runAblationCustom("unicast-baseline", n, opt, nil, true)
	if err != nil {
		return nil, err
	}
	rows = append(rows, *row)
	return rows, nil
}

// AblationInterference compares jamming on vs off.
func AblationInterference(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	on := *opt.Channel
	off := on
	off.JamPErase = 0
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		ch   testbed.Channel
	}{{"interference-on", on}, {"interference-off", off}} {
		o := opt
		o.Channel = &tc.ch
		row, err := runAblation(tc.name, n, o, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// AblationRotation compares leader rotation on vs off.
func AblationRotation(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	var rows []AblationRow
	for _, rotate := range []bool{true, false} {
		name := "rotation-on"
		if !rotate {
			name = "rotation-off"
		}
		r := rotate
		row, err := runAblation(name, n, opt, func(cfg *core.Config) { cfg.Rotate = r })
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

func runAblation(name string, n int, opt Fig2Options, mutate func(*core.Config)) (*AblationRow, error) {
	return runAblationCustom(name, n, opt, mutate, false)
}

// ablationCell is one experiment's contribution to an AblationRow.
type ablationCell struct {
	eff float64
	rel float64
}

// foldAblation aggregates per-experiment cells, in enumeration order, into
// a row. Shared by every ablation so each aggregates identically.
func foldAblation(name string, cells []ablationCell) *AblationRow {
	row := &AblationRow{Name: name, MinReliab: math.Inf(1)}
	var rels []float64
	var effSum float64
	for _, c := range cells {
		effSum += c.eff
		if math.IsNaN(c.rel) {
			row.NoSecretCount++
			continue
		}
		rels = append(rels, c.rel)
		if c.rel < row.MinReliab {
			row.MinReliab = c.rel
		}
	}
	row.MeanEff = effSum / float64(len(cells))
	if len(rels) > 0 {
		sum := 0.0
		for _, r := range rels {
			sum += r
		}
		row.MeanReliab = sum / float64(len(rels))
		row.P50Reliab = medianOf(rels)
	} else {
		row.MinReliab = math.NaN()
		row.MeanReliab = math.NaN()
		row.P50Reliab = math.NaN()
	}
	return row
}

func runAblationCustom(name string, n int, opt Fig2Options, mutate func(*core.Config), useUnicast bool) (*AblationRow, error) {
	opt.fill()
	placements := testbed.SubsamplePlacements(testbed.EnumeratePlacements(n), opt.MaxPlacements)
	cells, err := sweep.Run(opt.Workers, len(placements), func(i int) (ablationCell, error) {
		cfg := core.Config{
			XPerRound:    opt.XPerRound,
			PayloadBytes: opt.PayloadBytes,
			Rounds:       opt.Rounds,
			Rotate:       true,
			Terminals:    n,
			Seed:         opt.Seed + int64(i)*7919,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		var res *core.SessionResult
		var err error
		if useUnicast {
			// Build the medium the same way testbed.Experiment does, but
			// run the unicast session.
			res, err = runUnicastOnPlacement(placements[i], *opt.Channel, cfg, opt.Seed+int64(i)*104729+1)
		} else {
			ex := &testbed.Experiment{Placement: placements[i], Channel: *opt.Channel, Protocol: cfg, Seed: opt.Seed + int64(i)*104729 + 1}
			res, err = ex.Run()
		}
		if err != nil {
			return ablationCell{}, err
		}
		return ablationCell{eff: res.Efficiency, rel: res.Reliability}, nil
	})
	if err != nil {
		return nil, err
	}
	return foldAblation(name, cells), nil
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

func runUnicastOnPlacement(pl testbed.Placement, ch testbed.Channel, cfg core.Config, seed int64) (*core.SessionResult, error) {
	n := len(pl.TerminalCells)
	pos := make([]radio.Position, n+1)
	cells := make([]testbed.Cell, n+1)
	for i, c := range pl.TerminalCells {
		pos[i] = c.Center()
		cells[i] = c
	}
	pos[n] = pl.EveCell.Center()
	cells[n] = pl.EveCell
	base := &radio.DistanceModel{Pos: pos, Base: ch.Base, PerMeter: ch.PerMeter, Cap: ch.Cap}
	jam := &radio.Jammer{
		Base:      base,
		CellOf:    func(id radio.NodeID) (int, int) { return cells[int(id)].RowCol() },
		Schedule:  radio.AllPatterns(testbed.GridDim, testbed.GridDim),
		JamPErase: ch.JamPErase,
	}
	med := radio.NewMedium(jam, n+1, seed)
	return unicast.RunSession(cfg, med, []radio.NodeID{radio.NodeID(n)})
}

// FormatAblation renders ablation rows.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n\n", title)
	fmt.Fprintf(&b, "%-28s %10s %8s %8s %8s %9s\n", "configuration", "meanEff", "relMin", "relP50", "relAvg", "noSecret")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %10.4f %8.3f %8.3f %8.3f %9d\n",
			r.Name, r.MeanEff, r.MinReliab, r.P50Reliab, r.MeanReliab, r.NoSecretCount)
	}
	return b.String()
}

// AblationSelfJam compares the three interference strategies of §3.3: the
// dedicated WARP-style interferers of the deployment, the paper's
// suggested terminal self-jamming, and no artificial interference at all.
func AblationSelfJam(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	infra := *opt.Channel
	self := infra
	self.JamPErase = 0
	self.SelfJam = true
	none := infra
	none.JamPErase = 0
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		ch   testbed.Channel
	}{
		{"interferers", infra},
		{"self-jamming", self},
		{"no-interference", none},
	} {
		o := opt
		o.Channel = &tc.ch
		row, err := runAblation(tc.name, n, o, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// AblationBurstiness stresses the budgeting assumption: the estimators
// model Eve's misses as independent per packet, but real indoor channels
// lose packets in bursts. Compare an iid channel against Gilbert-Elliott
// channels with the SAME stationary loss but increasing burst lengths
// (sessions on a symmetric medium, leave-one-out estimator). Sessions fan
// out over workers goroutines (0 = one per CPU).
func AblationBurstiness(n, sessions, workers int, seed int64) ([]AblationRow, error) {
	type channel struct {
		name  string
		model func(s int64) radio.ErasureModel
	}
	const loss = 0.45
	channels := []channel{
		{"iid", func(s int64) radio.ErasureModel { return radio.Uniform{P: loss} }},
		// pi_bad = 0.5 in both; burst length 1/PBadToGood.
		{"bursty(len~5)", func(s int64) radio.ErasureModel {
			return radio.NewGilbertElliott(0.05, 0.85, 0.2, 0.2, s)
		}},
		{"bursty(len~20)", func(s int64) radio.ErasureModel {
			return radio.NewGilbertElliott(0.05, 0.85, 0.05, 0.05, s)
		}},
	}
	var rows []AblationRow
	for _, ch := range channels {
		cells, err := sweep.Run(workers, sessions, func(s int) (ablationCell, error) {
			med := radio.NewMedium(ch.model(seed+int64(s)*13), n+1, seed+int64(s)*7)
			res, err := core.RunSession(core.Config{
				Terminals: n, XPerRound: 90, PayloadBytes: 100,
				Rounds: 3, Rotate: true, Seed: seed + int64(s)*29,
				SlotsPerRound: 90, // every packet gets its own slot: bursts bite
			}, med, []radio.NodeID{radio.NodeID(n)})
			if err != nil {
				return ablationCell{}, err
			}
			return ablationCell{eff: res.Efficiency, rel: res.Reliability}, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, *foldAblation(ch.name, cells))
	}
	return rows, nil
}

// AblationCancellingEve reproduces the paper's §6 threat analysis: an Eve
// whose antenna array cancels the artificial interference sees only the
// bare distance channel. The rows compare a normal Eve and a cancelling
// Eve under the leave-one-out estimator, plus the k-subset defense
// (budgeting as if Eve were two terminals) against the cancelling Eve.
func AblationCancellingEve(n int, opt Fig2Options) ([]AblationRow, error) {
	opt.fill()
	cases := []struct {
		name    string
		cancels bool
		est     core.Estimator
	}{
		{"eve-normal/loo", false, core.LeaveOneOut{}},
		{"eve-cancelling/loo", true, core.LeaveOneOut{}},
		{"eve-cancelling/ksubset2", true, core.KSubset{K: 2}},
	}
	placements := testbed.SubsamplePlacements(testbed.EnumeratePlacements(n), opt.MaxPlacements)
	var rows []AblationRow
	for _, tc := range cases {
		cells, err := sweep.Run(opt.Workers, len(placements), func(i int) (ablationCell, error) {
			ex := &testbed.Experiment{
				Placement: placements[i],
				Channel:   *opt.Channel,
				Protocol: core.Config{
					XPerRound: opt.XPerRound, PayloadBytes: opt.PayloadBytes,
					Rounds: opt.Rounds, Rotate: true, Terminals: n,
					Estimator: tc.est, Seed: opt.Seed + int64(i)*7919,
				},
				EveCancelsJamming: tc.cancels,
				Seed:              opt.Seed + int64(i)*104729 + 1,
			}
			res, err := ex.Run()
			if err != nil {
				return ablationCell{}, err
			}
			return ablationCell{eff: res.Efficiency, rel: res.Reliability}, nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, *foldAblation(tc.name, cells))
	}
	return rows, nil
}
