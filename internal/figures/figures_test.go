package figures

import (
	"math"
	"strings"
	"testing"
)

func TestFigure1ShapeClaims(t *testing.T) {
	curves := Figure1([]int{2, 3, 6, 10, 0}, 20)
	if len(curves) != 5 {
		t.Fatalf("curves = %d", len(curves))
	}
	// n=2 group curve peaks at 0.25 near p=0.5.
	var n2 Fig1Curve
	for _, c := range curves {
		if c.N == 2 {
			n2 = c
		}
	}
	peak := 0.0
	for _, pt := range n2.Points {
		if pt.Group > peak {
			peak = pt.Group
		}
	}
	if math.Abs(peak-0.25) > 1e-9 {
		t.Fatalf("n=2 peak = %v", peak)
	}
	// Unicast vanishes for the infinite curve; group does not.
	for _, c := range curves {
		if c.N == 0 {
			for _, pt := range c.Points {
				if pt.Unicast != 0 {
					t.Fatal("unicast inf curve nonzero")
				}
			}
			mid := c.Points[10] // p = 0.5
			if math.Abs(mid.Group-0.2) > 1e-9 {
				t.Fatalf("group inf at 0.5 = %v", mid.Group)
			}
		}
	}
	s := FormatFigure1(curves)
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "grp(n=inf)") {
		t.Fatalf("format missing pieces:\n%s", s)
	}
}

func TestFigure1MonteCarloMatchesAnalytic(t *testing.T) {
	pts := Figure1MonteCarlo([]int{2, 4}, []float64{0.3, 0.5}, 120, 6, 0, 77)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Analytic <= 0 {
			t.Fatalf("analytic = %v", pt.Analytic)
		}
		// Finite-N Monte Carlo vs fluid analytic: generous but meaningful
		// tolerance. The min-over-terminals effect biases measured a bit
		// below analytic.
		ratio := pt.Measured / pt.Analytic
		if ratio < 0.65 || ratio > 1.15 {
			t.Fatalf("n=%d p=%v: measured/analytic = %v (measured %v, analytic %v)",
				pt.N, pt.P, ratio, pt.Measured, pt.Analytic)
		}
	}
	if s := FormatFigure1MC(pts); !strings.Contains(s, "cross-validation") {
		t.Fatal("format broken")
	}
}

func TestFigure2SmallSweep(t *testing.T) {
	rows, err := Figure2(Fig2Options{
		Ns: []int{3, 4}, XPerRound: 36, Rounds: 1, PayloadBytes: 8,
		MaxPlacements: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].N != 3 || rows[1].N != 4 {
		t.Fatalf("rows = %+v", rows)
	}
	s := FormatFigure2(rows)
	if !strings.Contains(s, "Figure 2") || !strings.Contains(s, "minKbps") {
		t.Fatalf("format broken:\n%s", s)
	}
}

func TestHeadlineSmall(t *testing.T) {
	h, err := Headline(Fig2Options{XPerRound: 36, Rounds: 1, PayloadBytes: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// n=8 has only 9 placements, so even the "small" run is the full set.
	if h.Sweep.Experiments != 9 {
		t.Fatalf("experiments = %d", h.Sweep.Experiments)
	}
	if h.MinEfficiency < 0 || h.MinKbps < 0 {
		t.Fatal("negative metrics")
	}
	if s := FormatHeadline(h); !strings.Contains(s, "paper") {
		t.Fatal("format broken")
	}
}

func TestRotationCheck(t *testing.T) {
	opt := Fig2Options{XPerRound: 27, Rounds: 2, PayloadBytes: 8, MaxPlacements: 6, Seed: 9}
	with, err := RotationCheck(3, true, opt)
	if err != nil {
		t.Fatal(err)
	}
	without, err := RotationCheck(3, false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if with.RoundsTotal == 0 || without.RoundsTotal == 0 {
		t.Fatal("no rounds ran")
	}
	if s := FormatRotation(with, without); !strings.Contains(s, "rotation ON") {
		t.Fatal("format broken")
	}
}

func TestAblations(t *testing.T) {
	opt := Fig2Options{XPerRound: 27, Rounds: 1, PayloadBytes: 8, MaxPlacements: 4, Seed: 13}
	est, err := AblationEstimators(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 5 || est[0].Name != "oracle" {
		t.Fatalf("estimator rows: %+v", est)
	}
	// Oracle never leaks: min reliability 1 whenever a secret exists.
	if est[0].NoSecretCount < len(est) && !math.IsNaN(est[0].MinReliab) && est[0].MinReliab != 1 {
		t.Fatalf("oracle min reliability = %v", est[0].MinReliab)
	}
	alloc, err := AblationAllocation(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 4 || alloc[3].Name != "unicast-baseline" {
		t.Fatalf("allocation rows: %+v", alloc)
	}
	intf, err := AblationInterference(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(intf) != 2 {
		t.Fatal("interference rows")
	}
	rot, err := AblationRotation(4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rot) != 2 {
		t.Fatal("rotation rows")
	}
	if s := FormatAblation("estimators", est); !strings.Contains(s, "oracle") {
		t.Fatal("format broken")
	}
}

func TestMedianOf(t *testing.T) {
	if m := medianOf([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := medianOf([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("median = %v", m)
	}
}

func TestAblationSelfJam(t *testing.T) {
	rows, err := AblationSelfJam(4, Fig2Options{
		XPerRound: 27, Rounds: 1, PayloadBytes: 8, MaxPlacements: 4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.MeanEff < 0 {
			t.Fatalf("negative efficiency: %+v", r)
		}
	}
	for _, want := range []string{"interferers", "self-jamming", "no-interference"} {
		if !names[want] {
			t.Fatalf("missing row %q", want)
		}
	}
}

func TestAblationBurstiness(t *testing.T) {
	rows, err := AblationBurstiness(3, 4, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Name != "iid" {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.NoSecretCount == 4 {
			continue // all sessions empty: reliability columns are NaN
		}
		if r.P50Reliab < 0 || r.P50Reliab > 1 {
			t.Fatalf("p50 out of range: %+v", r)
		}
	}
}

func TestPlot(t *testing.T) {
	s := Plot("test", []Series{
		{Label: "a", Mark: '*', X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}},
		{Label: "b", Mark: 'o', X: []float64{0, 1, 2}, Y: []float64{1, 0.5, 0}},
	}, 20, 8)
	if !strings.Contains(s, "test") || !strings.Contains(s, "*=a") || !strings.Contains(s, "o=b") {
		t.Fatalf("plot missing pieces:\n%s", s)
	}
	// Degenerate inputs must not panic or divide by zero.
	if got := Plot("empty", nil, 20, 8); !strings.Contains(got, "no data") {
		t.Fatalf("empty plot: %q", got)
	}
	one := Plot("point", []Series{{Label: "p", Mark: 'x', X: []float64{1}, Y: []float64{1}}}, 20, 8)
	if !strings.Contains(one, "no data") {
		t.Fatalf("single x-value should report no data (zero range): %q", one)
	}
	// NaNs are skipped.
	nan := Plot("nan", []Series{{Label: "n", Mark: 'x', X: []float64{0, 1, math.NaN()}, Y: []float64{0, math.NaN(), 1}}}, 20, 8)
	if strings.Contains(nan, "NaN") {
		t.Fatal("NaN leaked into plot")
	}
}

func TestPlotFigures(t *testing.T) {
	curves := Figure1([]int{2, 6, 0}, 10)
	if s := PlotFigure1(curves, 40, 10); !strings.Contains(s, "grp n=2") || !strings.Contains(s, "uni n=6") {
		t.Fatalf("fig1 plot:\n%s", s)
	}
	rows, err := Figure2(Fig2Options{Ns: []int{3, 4}, XPerRound: 27, Rounds: 1, PayloadBytes: 8, MaxPlacements: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := PlotFigure2(rows, 30, 8); !strings.Contains(s, "p50") {
		t.Fatalf("fig2 plot:\n%s", s)
	}
}

func TestAblationCancellingEve(t *testing.T) {
	rows, err := AblationCancellingEve(4, Fig2Options{
		XPerRound: 36, Rounds: 2, PayloadBytes: 8, MaxPlacements: 6, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Name != "eve-normal/loo" {
		t.Fatalf("rows = %+v", rows)
	}
	// A cancelling Eve must do at least as well as a normal Eve against
	// the same estimator (strictly more information).
	if !math.IsNaN(rows[0].MeanReliab) && !math.IsNaN(rows[1].MeanReliab) &&
		rows[1].MeanReliab > rows[0].MeanReliab+1e-9 {
		t.Fatalf("cancelling Eve did worse: %v vs %v", rows[1].MeanReliab, rows[0].MeanReliab)
	}
}
