package figures

import (
	"testing"

	"repro/internal/core"
	"repro/internal/testbed"
)

func TestFigure2MatchesPerNSweep(t *testing.T) {
	opt := Fig2Options{Ns: []int{3, 4}, XPerRound: 36, Rounds: 2, PayloadBytes: 8, MaxPlacements: 12, Seed: 7, Workers: 4}
	rows, err := Figure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.fill()
	var want []*testbed.SweepResult
	for _, n := range opt.Ns {
		r, err := testbed.Sweep(n, testbed.SweepOptions{
			Protocol: core.Config{XPerRound: opt.XPerRound, PayloadBytes: opt.PayloadBytes, Rounds: opt.Rounds, Rotate: true},
			Channel:  *opt.Channel, Seed: opt.Seed, MaxPlacements: opt.MaxPlacements, Workers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if FormatFigure2(rows) != FormatFigure2(want) {
		t.Fatalf("cross-product sweep diverged:\n%s\nvs per-n:\n%s", FormatFigure2(rows), FormatFigure2(want))
	}
}
