package figures

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/testbed"
)

// Series is one curve of an ASCII plot.
type Series struct {
	Label string
	Mark  rune
	X, Y  []float64
}

// Plot renders series on a width x height character grid with axis
// annotations — enough to eyeball the figures' shapes in a terminal.
func Plot(title string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // anchor y at 0: these are rates/probabilities
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return title + "\n(no data)\n"
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = s.Mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%7.3f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%7s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%7s  %-8.2f%s%8.2f\n", "", minX, strings.Repeat(" ", width-16), maxX)
	legend := make([]string, 0, len(series))
	for _, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Mark, s.Label))
	}
	fmt.Fprintf(&b, "%7s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// PlotFigure1 renders the group (and optionally unicast) efficiency curves.
func PlotFigure1(curves []Fig1Curve, width, height int) string {
	marks := []rune{'*', 'o', '+', 'x', '#', '@', '%'}
	var series []Series
	for i, c := range curves {
		label := "n=inf"
		if c.N > 0 {
			label = fmt.Sprintf("n=%d", c.N)
		}
		s := Series{Label: "grp " + label, Mark: marks[i%len(marks)]}
		for _, pt := range c.Points {
			s.X = append(s.X, pt.P)
			s.Y = append(s.Y, pt.Group)
		}
		series = append(series, s)
	}
	// One unicast curve for contrast: the largest finite n present.
	bestN, bestIdx := 0, -1
	for i, c := range curves {
		if c.N > bestN {
			bestN, bestIdx = c.N, i
		}
	}
	if bestIdx >= 0 {
		s := Series{Label: fmt.Sprintf("uni n=%d", bestN), Mark: '.'}
		for _, pt := range curves[bestIdx].Points {
			s.X = append(s.X, pt.P)
			s.Y = append(s.Y, pt.Unicast)
		}
		series = append(series, s)
	}
	return Plot("Figure 1 — efficiency vs erasure probability", series, width, height)
}

// PlotFigure2 renders the reliability summary series against group size.
func PlotFigure2(rows []*testbed.SweepResult, width, height int) string {
	min := Series{Label: "min", Mark: 'v'}
	p95 := Series{Label: "p95", Mark: '^'}
	avg := Series{Label: "avg", Mark: 'o'}
	p50 := Series{Label: "p50", Mark: '#'}
	for _, r := range rows {
		x := float64(r.N)
		min.X, min.Y = append(min.X, x), append(min.Y, r.Reliability.Min)
		p95.X, p95.Y = append(p95.X, x), append(p95.Y, r.Reliability.P95)
		avg.X, avg.Y = append(avg.X, x), append(avg.Y, r.Reliability.Mean)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, r.Reliability.P50)
	}
	return Plot("Figure 2 — reliability vs number of terminals", []Series{min, p95, avg, p50}, width, height)
}
