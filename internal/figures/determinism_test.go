package figures

import (
	"fmt"
	"testing"
)

// The parallel sweep engine's contract is that worker count never changes
// output: every job derives its randomness from (seed, job index) and
// partial results are folded in enumeration order. These regression tests
// pin that contract at the table level — the formatted text a reader of
// the reproduction actually consumes — by comparing byte-for-byte across
// worker counts.

func requireIdentical(t *testing.T, name string, render func(workers int) string) {
	t.Helper()
	ref := render(1)
	if ref == "" {
		t.Fatalf("%s: empty serial output", name)
	}
	for _, workers := range []int{2, 8} {
		if got := render(workers); got != ref {
			t.Errorf("%s: workers=%d output differs from serial\n--- workers=1\n%s\n--- workers=%d\n%s",
				name, workers, ref, workers, got)
		}
	}
}

func TestFigure2DeterministicAcrossWorkers(t *testing.T) {
	requireIdentical(t, "figure2", func(workers int) string {
		rows, err := Figure2(Fig2Options{
			Ns: []int{3, 4}, XPerRound: 36, Rounds: 2, PayloadBytes: 8,
			MaxPlacements: 12, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return FormatFigure2(rows)
	})
}

func TestAblationsDeterministicAcrossWorkers(t *testing.T) {
	opt := Fig2Options{XPerRound: 27, Rounds: 1, PayloadBytes: 8, MaxPlacements: 6, Seed: 13}
	ablations := []struct {
		name string
		run  func(Fig2Options) ([]AblationRow, error)
	}{
		{"estimators", func(o Fig2Options) ([]AblationRow, error) { return AblationEstimators(4, o) }},
		{"allocation", func(o Fig2Options) ([]AblationRow, error) { return AblationAllocation(4, o) }},
		{"rotation", func(o Fig2Options) ([]AblationRow, error) { return AblationRotation(4, o) }},
		{"selfjam", func(o Fig2Options) ([]AblationRow, error) { return AblationSelfJam(4, o) }},
		{"cancelling-eve", func(o Fig2Options) ([]AblationRow, error) { return AblationCancellingEve(4, o) }},
	}
	for _, a := range ablations {
		requireIdentical(t, a.name, func(workers int) string {
			o := opt
			o.Workers = workers
			rows, err := a.run(o)
			if err != nil {
				t.Fatal(err)
			}
			return FormatAblation(a.name, rows)
		})
	}
}

func TestBurstinessDeterministicAcrossWorkers(t *testing.T) {
	requireIdentical(t, "burstiness", func(workers int) string {
		rows, err := AblationBurstiness(3, 6, workers, 9)
		if err != nil {
			t.Fatal(err)
		}
		return FormatAblation("burstiness", rows)
	})
}

func TestRotationCheckDeterministicAcrossWorkers(t *testing.T) {
	requireIdentical(t, "rotation-check", func(workers int) string {
		opt := Fig2Options{XPerRound: 27, Rounds: 2, PayloadBytes: 8, MaxPlacements: 6, Seed: 9, Workers: workers}
		with, err := RotationCheck(3, true, opt)
		if err != nil {
			t.Fatal(err)
		}
		without, err := RotationCheck(3, false, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Compare the raw aggregates, not just the 3-decimal table, so a
		// fold-order regression cannot hide behind rounding.
		return fmt.Sprintf("%+v\n%+v\n%s", with, without, FormatRotation(with, without))
	})
}

func TestFigure1MonteCarloDeterministicAcrossWorkers(t *testing.T) {
	requireIdentical(t, "figure1-mc", func(workers int) string {
		pts := Figure1MonteCarlo([]int{2, 3}, []float64{0.3, 0.5}, 60, 4, workers, 77)
		return fmt.Sprintf("%+v\n%s", pts, FormatFigure1MC(pts))
	})
}

func TestHeadlineDeterministicAcrossWorkers(t *testing.T) {
	requireIdentical(t, "headline", func(workers int) string {
		h, err := Headline(Fig2Options{XPerRound: 36, Rounds: 1, PayloadBytes: 8, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return FormatHeadline(h)
	})
}
