// Package analytic computes the idealized efficiency curves of the paper's
// Figure 1: the maximum efficiency of the group algorithm (continuous
// lines) and of the unicast baseline (dashed lines) as a function of the
// packet erasure probability, for group sizes n = 2, 3, 6, 10, ..., ∞.
//
// The model matches the figure's stated assumptions: the leader guesses
// exactly how many x-packets shared with each terminal Eve missed (oracle
// estimates), and every channel — terminal or Eve — has the same erasure
// probability p. Everything is normalized per transmitted x-packet
// (fluid limit N → ∞), and only packet payloads count (no control
// overhead), which is how a "maximum efficiency" analysis is defined.
//
// Derivation. Erasures are independent, so an x-packet is received by a
// subset S of the n-1 non-leader terminals with probability
// (1-p)^|S| p^(n-1-|S|), and Eve misses it with probability p. The exact
// reception classes of size k = |S| therefore hold fluid mass
// b_k = C(n-1, k) (1-p)^k p^(n-1-k) per transmitted packet, of which the
// fraction p is usable secrecy budget (Eve-missed). Spending the budget of
// all classes of size >= kappa yields, per transmitted x-packet,
//
//	M(kappa) = sum_{k>=kappa} p·b_k            (y-packets)
//	L(kappa) = sum_{k>=kappa} p·b_k·k/(n-1)    (per-terminal coverage)
//
// and the protocol transmits 1 x-packet plus M-L z-packet payloads, so
//
//	eff(kappa) = L / (1 + M - L).
//
// Classes below the cutoff may hurt: a class of size k contributes
// k/(n-1) to L per unit of M, so its marginal benefit/cost ratio falls
// with k; GroupEfficiency maximizes over the cutoff. Using every class
// (kappa = 1) gives the closed form p(1-p) / (1 + p² - p^n), which
// interpolates between p(1-p) at n = 2 (the wiretap-II pairwise rate) and
// p(1-p)/(1+p²) as n → ∞.
//
// The unicast baseline spends the same Phase 1 and then one OTP-encrypted
// unicast of the L-packet group key per terminal:
// eff = L / (1 + (n-1)·L) with L = p(1-p), which vanishes as n grows —
// the paper's motivation for Phase 2.
package analytic

import "math"

// GroupEfficiency returns the maximum efficiency of the group algorithm
// for n >= 2 terminals at erasure probability p in [0, 1].
func GroupEfficiency(n int, p float64) float64 {
	if n < 2 {
		panic("analytic: need n >= 2")
	}
	checkP(p)
	if p == 0 || p == 1 {
		return 0
	}
	best := 0.0
	for kappa := 1; kappa <= n-1; kappa++ {
		var m, l float64
		for k := kappa; k <= n-1; k++ {
			bk := binomPMF(n-1, k, 1-p)
			m += p * bk
			l += p * bk * float64(k) / float64(n-1)
		}
		if eff := l / (1 + m - l); eff > best {
			best = eff
		}
	}
	return best
}

// GroupEfficiencyAllClasses returns the closed-form efficiency of the
// group algorithm when every reception class is used (cutoff 1):
// p(1-p) / (1 + p² - p^n). This is what a protocol that never discards
// budget achieves, and what the Monte-Carlo oracle runs are compared to.
func GroupEfficiencyAllClasses(n int, p float64) float64 {
	if n < 2 {
		panic("analytic: need n >= 2")
	}
	checkP(p)
	if p == 0 || p == 1 {
		return 0
	}
	return p * (1 - p) / (1 + p*p - math.Pow(p, float64(n)))
}

// GroupEfficiencyInf returns the n -> ∞ limit p(1-p)/(1+p²); its maximum
// is ~0.207 at p = sqrt(2)-1.
func GroupEfficiencyInf(p float64) float64 {
	checkP(p)
	return p * (1 - p) / (1 + p*p)
}

// UnicastEfficiency returns the unicast baseline's efficiency:
// L/(1+(n-1)L) with L = p(1-p). The leader makes n-1 separate unicast
// transmissions of the group key, which is exactly the scaling failure
// Figure 1 demonstrates.
func UnicastEfficiency(n int, p float64) float64 {
	if n < 2 {
		panic("analytic: need n >= 2")
	}
	checkP(p)
	l := p * (1 - p)
	return l / (1 + float64(n-1)*l)
}

// UnicastEfficiencyInf is the n -> ∞ limit of the unicast baseline: 0.
func UnicastEfficiencyInf(p float64) float64 {
	checkP(p)
	return 0
}

func checkP(p float64) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic("analytic: erasure probability outside [0,1]")
	}
}

// binomPMF returns C(n, k) q^k (1-q)^(n-k), computed in log space so large
// n cannot overflow the binomial coefficient.
func binomPMF(n, k int, q float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if q == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if q == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(q) + float64(n-k)*math.Log(1-q)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
