package analytic

import (
	"math"
	"testing"
)

func TestGroupEfficiencyPairwiseCase(t *testing.T) {
	// n=2 reduces to the wiretap-II pairwise rate p(1-p), peak 0.25 at 0.5.
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		want := p * (1 - p)
		if got := GroupEfficiency(2, p); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=2 p=%v: %v, want %v", p, got, want)
		}
	}
	if got := GroupEfficiency(2, 0.5); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("peak = %v", got)
	}
}

func TestGroupEfficiencyBoundaries(t *testing.T) {
	for _, n := range []int{2, 3, 6, 10} {
		if GroupEfficiency(n, 0) != 0 || GroupEfficiency(n, 1) != 0 {
			t.Fatalf("n=%d: nonzero efficiency at p boundary", n)
		}
	}
	if GroupEfficiencyInf(0) != 0 || GroupEfficiencyInf(1) != 0 {
		t.Fatal("inf boundary")
	}
}

func TestGroupEfficiencyDecreasesWithN(t *testing.T) {
	// Figure 1's ordering: n=2 on top, then 3, 6, 10, with the infinite
	// limit below all finite curves.
	for _, p := range []float64{0.2, 0.4, 0.5, 0.6, 0.8} {
		prev := math.Inf(1)
		for _, n := range []int{2, 3, 6, 10, 40} {
			e := GroupEfficiency(n, p)
			if e > prev+1e-12 {
				t.Fatalf("p=%v: efficiency increased from n-1 to n=%d (%v > %v)", p, n, e, prev)
			}
			prev = e
		}
		if inf := GroupEfficiencyInf(p); inf > prev+1e-9 {
			t.Fatalf("p=%v: infinite-n limit %v above n=40 %v", p, inf, prev)
		}
	}
}

func TestGroupEfficiencyStaysBoundedAwayFromZero(t *testing.T) {
	// The paper's headline contrast: the group algorithm's efficiency does
	// NOT vanish as n grows (at p=0.5 the limit is 0.2).
	if got := GroupEfficiencyInf(0.5); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("inf limit at 0.5 = %v, want 0.2", got)
	}
	// Peak location sqrt(2)-1.
	pStar := math.Sqrt2 - 1
	peak := GroupEfficiencyInf(pStar)
	for _, p := range []float64{0.3, 0.45, 0.5} {
		if GroupEfficiencyInf(p) > peak+1e-12 {
			t.Fatalf("inf peak not at sqrt(2)-1: f(%v)=%v > %v", p, GroupEfficiencyInf(p), peak)
		}
	}
}

func TestGroupAllClassesClosedFormMatchesSum(t *testing.T) {
	// The closed form p(1-p)/(1+p^2-p^n) must equal the cutoff-1 sum.
	for _, n := range []int{2, 3, 6, 10, 17} {
		for _, p := range []float64{0.1, 0.35, 0.5, 0.77} {
			var m, l float64
			for k := 1; k <= n-1; k++ {
				bk := binomPMF(n-1, k, 1-p)
				m += p * bk
				l += p * bk * float64(k) / float64(n-1)
			}
			sum := l / (1 + m - l)
			cf := GroupEfficiencyAllClasses(n, p)
			if math.Abs(sum-cf) > 1e-9 {
				t.Fatalf("n=%d p=%v: sum %v vs closed form %v", n, p, sum, cf)
			}
		}
	}
}

func TestGroupEfficiencyAtLeastAllClasses(t *testing.T) {
	// The optimized cutoff can only improve on using everything.
	for _, n := range []int{2, 3, 6, 10, 30} {
		for p := 0.05; p < 1; p += 0.05 {
			if GroupEfficiency(n, p) < GroupEfficiencyAllClasses(n, p)-1e-12 {
				t.Fatalf("n=%d p=%v: optimum below all-classes", n, p)
			}
		}
	}
}

func TestUnicastEfficiency(t *testing.T) {
	// Exact small case: n=3, p=0.5: L=0.25, eff = 0.25/(1+0.5) = 1/6.
	if got := UnicastEfficiency(3, 0.5); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("unicast(3, .5) = %v", got)
	}
	// Vanishes with n (the paper's point).
	prev := math.Inf(1)
	for _, n := range []int{2, 3, 6, 10, 100, 1000} {
		e := UnicastEfficiency(n, 0.5)
		if e >= prev {
			t.Fatalf("unicast efficiency not decreasing at n=%d", n)
		}
		prev = e
	}
	if UnicastEfficiency(1000, 0.5) > 0.002 {
		t.Fatalf("unicast at n=1000 = %v, should approach 0", UnicastEfficiency(1000, 0.5))
	}
	if UnicastEfficiencyInf(0.5) != 0 {
		t.Fatal("unicast inf limit nonzero")
	}
}

func TestGroupBeatsUnicast(t *testing.T) {
	// For n > 2 the group algorithm strictly dominates the unicast
	// baseline (they coincide in Phase 1 but Phase 2 redistributes
	// instead of re-unicasting).
	for _, n := range []int{3, 6, 10, 25} {
		for p := 0.05; p < 0.999; p += 0.05 {
			g, u := GroupEfficiency(n, p), UnicastEfficiency(n, p)
			if g <= u {
				t.Fatalf("n=%d p=%v: group %v <= unicast %v", n, p, g, u)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { GroupEfficiency(1, 0.5) },
		func() { GroupEfficiency(3, -0.1) },
		func() { GroupEfficiency(3, 1.1) },
		func() { UnicastEfficiency(1, 0.5) },
		func() { GroupEfficiencyInf(math.NaN()) },
		func() { GroupEfficiencyAllClasses(0, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBinomPMF(t *testing.T) {
	// Sums to 1.
	for _, n := range []int{1, 5, 40, 300} {
		sum := 0.0
		for k := 0; k <= n; k++ {
			sum += binomPMF(n, k, 0.37)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("n=%d: pmf sums to %v", n, sum)
		}
	}
	if binomPMF(5, -1, 0.5) != 0 || binomPMF(5, 6, 0.5) != 0 {
		t.Fatal("out-of-range k nonzero")
	}
	if binomPMF(5, 0, 0) != 1 || binomPMF(5, 5, 1) != 1 {
		t.Fatal("degenerate q wrong")
	}
}
