package mds

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// The field-size ablation: the protocol runs over GF(2^16) because Cauchy
// constructions need rows+cols distinct points and GF(2^8) caps that at
// 256; these benches quantify what the safety margin costs on the coding
// fast paths (the "field size" ablation).

func benchExtract[E gf.Elem](b *testing.B, f *gf.Field[E], m, c, width int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	w := NewWiretapExtractor(f, m, c)
	src := make([][]E, c)
	for i := range src {
		src[i] = make([]E, width)
		for j := range src[i] {
			src[i][j] = E(rng.Intn(f.Size()))
		}
	}
	b.SetBytes(int64(c * width * int(unsafeSizeof[E]())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Extract(src)
	}
}

// unsafeSizeof avoids importing unsafe: symbol widths are known.
func unsafeSizeof[E gf.Elem]() uintptr {
	var e E
	switch any(e).(type) {
	case uint8:
		return 1
	default:
		return 2
	}
}

func BenchmarkWiretapExtractGF256(b *testing.B) {
	benchExtract(b, gf.GF256(), 8, 64, 100)
}

func BenchmarkWiretapExtractGF65536(b *testing.B) {
	benchExtract(b, gf.GF65536(), 8, 64, 50)
}

func benchReconstruct[E gf.Elem](b *testing.B, f *gf.Field[E], k, r, width int) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	code := NewSystematicCode(f, k, r)
	data := make([][]E, k)
	for i := range data {
		data[i] = make([]E, width)
		for j := range data[i] {
			data[i][j] = E(rng.Intn(f.Size()))
		}
	}
	parity := code.EncodeParity(data)
	// Worst-case erasure: all parity symbols needed.
	known := map[int][]E{}
	for i := r; i < k; i++ {
		known[i] = data[i]
	}
	for i := 0; i < r; i++ {
		known[k+i] = parity[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Reconstruct(known); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructGF256(b *testing.B) {
	benchReconstruct(b, gf.GF256(), 24, 8, 100)
}

func BenchmarkReconstructGF65536(b *testing.B) {
	benchReconstruct(b, gf.GF65536(), 24, 8, 50)
}

func BenchmarkRedistributionRoundGF65536(b *testing.B) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(3))
	const m, l, width = 24, 8, 50
	y := make([][]uint16, m)
	for i := range y {
		y[i] = make([]uint16, width)
		for j := range y[i] {
			y[i][j] = uint16(rng.Intn(65536))
		}
	}
	rc := NewRedistributionCode(f, m, l)
	known := map[int][]uint16{}
	for i := 0; i < l; i++ {
		known[i] = y[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := rc.EncodeZ(y)
		if _, err := rc.CompleteY(known, z); err != nil {
			b.Fatal(err)
		}
		rc.EncodeS(y)
	}
}
