// Package mds implements the MDS-code-based constructions referenced in §3
// of the paper (and specified in its technical report): the wiretap-II
// secrecy extractor used to derive y-packets from x-packets, and the
// combined redistribution / privacy-amplification code used to derive
// z-packets and s-packets from y-packets.
//
// All constructions are built from Cauchy matrices, whose defining property
// — every square submatrix is nonsingular — yields simultaneously:
//
//   - wiretap security against ANY erasure pattern of the promised size
//     (not just the average one), and
//   - erasure decodability from ANY sufficiently large received subset.
package mds

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// RowsToMatrix packs payload rows (all the same length) into a matrix whose
// i-th row is rows[i]. Rows are copied.
func RowsToMatrix[E gf.Elem](f *gf.Field[E], rows [][]E) *matrix.Matrix[E] {
	return matrix.FromRows(f, rows)
}

// MatrixToRows unpacks a matrix into per-row slices (copies).
func MatrixToRows[E gf.Elem](m *matrix.Matrix[E]) [][]E {
	out := make([][]E, m.Rows())
	for i := range out {
		out[i] = append([]E(nil), m.Row(i)...)
	}
	return out
}

// WiretapExtractor derives m jointly-uniform output packets from c source
// packets, secure against an eavesdropper who misses at least m of the c
// sources. This is Ozarow-Wyner wiretap channel II coset coding in its
// practical form: output = H * sources with H an m x c Cauchy matrix.
//
// Concretely: let U be the set of source indices the eavesdropper missed.
// If |U| >= m, the m x |U| submatrix H[:,U] has full row rank m (any m of
// its columns form an invertible Cauchy square), so conditioned on
// everything the eavesdropper knows the outputs are uniform.
type WiretapExtractor[E gf.Elem] struct {
	f *gf.Field[E]
	h *matrix.Matrix[E]
}

// NewWiretapExtractor builds the extractor for c source packets and budget
// m <= c. It panics if m > c (the budget can never exceed the class size)
// or if the field is too small for the Cauchy construction.
func NewWiretapExtractor[E gf.Elem](f *gf.Field[E], m, c int) *WiretapExtractor[E] {
	if m > c {
		panic(fmt.Sprintf("mds: wiretap budget m=%d exceeds class size c=%d", m, c))
	}
	return &WiretapExtractor[E]{f: f, h: matrix.Cauchy(f, m, c)}
}

// Coeffs returns the m x c coefficient matrix H. These coefficients are
// public: the protocol reliably broadcasts them (the paper's "identities of
// the x-packets used to create each y-packet").
func (w *WiretapExtractor[E]) Coeffs() *matrix.Matrix[E] { return w.h }

// Extract computes the m output payloads from the c source payloads.
func (w *WiretapExtractor[E]) Extract(sources [][]E) [][]E {
	if len(sources) != w.h.Cols() {
		panic("mds: Extract source count mismatch")
	}
	return MatrixToRows(w.h.Mul(RowsToMatrix(w.f, sources)))
}

// SecrecyDeficit returns how many of the m outputs an eavesdropper who
// knows exactly the sources in `known` can resolve, as a rank deficit:
// 0 means perfect secrecy, m means the outputs are fully determined.
// This is the certificate checked by tests and used (at session scope) by
// the reliability metric.
func (w *WiretapExtractor[E]) SecrecyDeficit(known []bool) int {
	if len(known) != w.h.Cols() {
		panic("mds: SecrecyDeficit length mismatch")
	}
	var missing []int
	for j, k := range known {
		if !k {
			missing = append(missing, j)
		}
	}
	sub := w.h.SubCols(missing)
	return w.h.Rows() - sub.Rank()
}

// SystematicCode is a classic systematic MDS erasure code with k data
// symbols and r parity symbols: parity = P * data with P an r x k Cauchy
// matrix. Any k of the k+r symbols reconstruct the data.
type SystematicCode[E gf.Elem] struct {
	f *gf.Field[E]
	k int
	r int
	p *matrix.Matrix[E]
}

// NewSystematicCode builds a code with k data and r parity symbols.
func NewSystematicCode[E gf.Elem](f *gf.Field[E], k, r int) *SystematicCode[E] {
	return &SystematicCode[E]{f: f, k: k, r: r, p: matrix.Cauchy(f, r, k)}
}

// K returns the number of data symbols.
func (s *SystematicCode[E]) K() int { return s.k }

// R returns the number of parity symbols.
func (s *SystematicCode[E]) R() int { return s.r }

// Parity returns the r x k parity coefficient matrix.
func (s *SystematicCode[E]) Parity() *matrix.Matrix[E] { return s.p }

// EncodeParity computes the r parity payloads for the k data payloads.
func (s *SystematicCode[E]) EncodeParity(data [][]E) [][]E {
	if len(data) != s.k {
		panic("mds: EncodeParity data count mismatch")
	}
	return MatrixToRows(s.p.Mul(RowsToMatrix(s.f, data)))
}

// Reconstruct recovers all k data payloads from any >= k known symbols.
// known maps symbol index -> payload, where indices 0..k-1 are data symbols
// and k..k+r-1 are parity symbols. It returns an error if fewer than k
// symbols are supplied (the MDS property guarantees success for any k).
func (s *SystematicCode[E]) Reconstruct(known map[int][]E) ([][]E, error) {
	if len(known) < s.k {
		return nil, fmt.Errorf("mds: need %d symbols to reconstruct, have %d", s.k, len(known))
	}
	// Build the coefficient rows of the known symbols over the data space.
	idx := make([]int, 0, len(known))
	for i := range known {
		if i < 0 || i >= s.k+s.r {
			return nil, fmt.Errorf("mds: symbol index %d out of range", i)
		}
		idx = append(idx, i)
	}
	// Deterministic order helps debugging; sort small slice by insertion.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	coeff := matrix.New(s.f, len(idx), s.k)
	var width int
	for _, i := range idx {
		width = len(known[i])
		break
	}
	rhs := matrix.New(s.f, len(idx), width)
	for row, i := range idx {
		if len(known[i]) != width {
			return nil, fmt.Errorf("mds: ragged payloads in Reconstruct")
		}
		if i < s.k {
			coeff.Set(row, i, 1)
		} else {
			copy(coeff.Row(row), s.p.Row(i-s.k))
		}
		copy(rhs.Row(row), known[i])
	}
	x, err := matrix.Solve(coeff, rhs)
	if err != nil {
		return nil, fmt.Errorf("mds: reconstruct: %w", err)
	}
	return MatrixToRows(x), nil
}
