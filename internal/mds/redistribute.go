package mds

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// RedistributionCode implements Phase 2 of the protocol in one object.
//
// Given M y-packets of which terminal T_i can reconstruct M_i >= L, the
// leader draws an invertible M x M Cauchy matrix Q and splits it:
//
//   - the first M-L rows are the z-packet coefficients; the z *contents*
//     Z = Q_z * Y are reliably broadcast so each terminal can complete its
//     missing y-packets (any terminal is short at most M-L packets, and
//     every square submatrix of Q_z is invertible, so its equations always
//     solve);
//   - the last L rows are the s-packet coefficients; only the coefficients
//     are broadcast, and S = Q_s * Y is the group secret.
//
// Because Q is invertible, (Z, S) is a bijection of Y: if the y-packets
// were uniform to Eve, then S remains uniform to Eve even though she
// overhears Z. This is the paper's Phase-2 key point ("redistributes but
// does not increase the secret information").
type RedistributionCode[E gf.Elem] struct {
	f *gf.Field[E]
	m int
	l int
	q *matrix.Matrix[E]
}

// NewRedistributionCode builds the code for M y-packets and a group secret
// of L packets, 0 <= L <= M.
func NewRedistributionCode[E gf.Elem](f *gf.Field[E], m, l int) *RedistributionCode[E] {
	if l < 0 || l > m {
		panic(fmt.Sprintf("mds: redistribution L=%d out of range for M=%d", l, m))
	}
	return &RedistributionCode[E]{f: f, m: m, l: l, q: matrix.Cauchy(f, m, m)}
}

// M returns the total number of y-packets.
func (r *RedistributionCode[E]) M() int { return r.m }

// L returns the group secret size in packets.
func (r *RedistributionCode[E]) L() int { return r.l }

// ZCoeffs returns the (M-L) x M z-packet coefficient matrix.
func (r *RedistributionCode[E]) ZCoeffs() *matrix.Matrix[E] {
	return r.q.SubRows(seq(0, r.m-r.l))
}

// SCoeffs returns the L x M s-packet coefficient matrix.
func (r *RedistributionCode[E]) SCoeffs() *matrix.Matrix[E] {
	return r.q.SubRows(seq(r.m-r.l, r.m))
}

// EncodeZ computes the z-packet contents from the full y-packet set.
func (r *RedistributionCode[E]) EncodeZ(y [][]E) [][]E {
	if len(y) != r.m {
		panic("mds: EncodeZ y count mismatch")
	}
	return MatrixToRows(r.ZCoeffs().Mul(RowsToMatrix(r.f, y)))
}

// EncodeS computes the s-packet contents (the group secret) from the full
// y-packet set.
func (r *RedistributionCode[E]) EncodeS(y [][]E) [][]E {
	if len(y) != r.m {
		panic("mds: EncodeS y count mismatch")
	}
	return MatrixToRows(r.SCoeffs().Mul(RowsToMatrix(r.f, y)))
}

// CompleteY recovers the full y-packet set for a terminal that knows the
// y-packets in `known` (index -> payload) plus all z contents. It fails
// with an error if the terminal knows fewer than L y-packets (more unknowns
// than z equations), which the protocol prevents by setting L = min M_i.
func (r *RedistributionCode[E]) CompleteY(known map[int][]E, z [][]E) ([][]E, error) {
	if len(z) != r.m-r.l {
		return nil, fmt.Errorf("mds: CompleteY expects %d z-packets, got %d", r.m-r.l, len(z))
	}
	coeffs := MatrixToRows(r.ZCoeffs())
	return CompleteFromEquations(r.f, r.m, known, coeffs, z)
}

// CompleteFromEquations solves the general "fill in the missing packets"
// problem from explicit linear equations: the caller knows some of m
// packets (known: index -> payload) and observes extra equations
// eq[j]: coeffs[j] * packets = payloads[j]. It returns the full packet set
// or an error when the system does not determine the unknowns.
//
// The terminal side of Phase 2 uses this directly on the coefficient rows
// it heard on the wire, so decoding never assumes the leader used any
// particular matrix construction.
func CompleteFromEquations[E gf.Elem](f *gf.Field[E], m int, known map[int][]E, coeffs, payloads [][]E) ([][]E, error) {
	if len(coeffs) != len(payloads) {
		return nil, fmt.Errorf("mds: %d coefficient rows but %d payloads", len(coeffs), len(payloads))
	}
	var unknown []int
	for i := 0; i < m; i++ {
		if _, ok := known[i]; !ok {
			unknown = append(unknown, i)
		}
	}
	if len(unknown) == 0 {
		return gatherRows(m, known, nil, nil), nil
	}
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("mds: %d unknown packets but no equations", len(unknown))
	}
	width := len(payloads[0])
	// Gather the known payloads once; every equation row moves the same
	// set to the right-hand side in one batched kernel call.
	knownIdx := make([]int, 0, len(known))
	knownPay := make([][]E, 0, len(known))
	for i, payload := range known {
		if len(payload) != width {
			return nil, fmt.Errorf("mds: ragged known payloads")
		}
		knownIdx = append(knownIdx, i)
		knownPay = append(knownPay, payload)
	}
	cm := matrix.New(f, len(coeffs), m)
	rhs := matrix.New(f, len(coeffs), width)
	kcs := make([]E, len(knownIdx))
	for j := range coeffs {
		if len(coeffs[j]) != m {
			return nil, fmt.Errorf("mds: equation %d has %d coefficients, want %d", j, len(coeffs[j]), m)
		}
		if len(payloads[j]) != width {
			return nil, fmt.Errorf("mds: ragged equation payloads")
		}
		copy(cm.Row(j), coeffs[j])
		copy(rhs.Row(j), payloads[j])
		for t, i := range knownIdx {
			kcs[t] = cm.At(j, i)
		}
		f.AddMulSlices(rhs.Row(j), knownPay, kcs)
	}
	sub := cm.SubCols(unknown)
	x, err := matrix.Solve(sub, rhs)
	if err != nil {
		return nil, fmt.Errorf("mds: complete: %w", err)
	}
	return gatherRows(m, known, unknown, x), nil
}

// gatherRows assembles the full packet set into one contiguous backing
// array (m rows, one allocation instead of m): known payloads are copied
// at their indices, solved rows fill the unknowns.
func gatherRows[E gf.Elem](m int, known map[int][]E, unknown []int, x *matrix.Matrix[E]) [][]E {
	width := 0
	for _, p := range known {
		width = len(p)
		break
	}
	if x != nil && x.Rows() > 0 {
		width = x.Cols()
	}
	backing := make([]E, m*width)
	out := make([][]E, m)
	for i := 0; i < m; i++ {
		out[i] = backing[i*width : (i+1)*width : (i+1)*width]
	}
	for i, payload := range known {
		copy(out[i], payload)
	}
	for k, i := range unknown {
		copy(out[i], x.Row(k))
	}
	return out
}

// seq returns [lo, hi) as a slice.
func seq(lo, hi int) []int {
	s := make([]int, hi-lo)
	for i := range s {
		s[i] = lo + i
	}
	return s
}
