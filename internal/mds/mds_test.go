package mds

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func randRows(rng *rand.Rand, n, width int) [][]uint16 {
	rows := make([][]uint16, n)
	for i := range rows {
		rows[i] = make([]uint16, width)
		for j := range rows[i] {
			rows[i][j] = uint16(rng.Intn(65536))
		}
	}
	return rows
}

func TestWiretapPerfectSecrecyForAllQualifyingPatterns(t *testing.T) {
	// Exhaustively check small (c, m): for EVERY erasure pattern where Eve
	// misses >= m sources, the deficit is 0; for patterns missing fewer
	// than m, the deficit is exactly m - missing (Cauchy submatrices have
	// maximal rank, so leakage is never worse than the counting bound).
	f := gf.GF256()
	for c := 1; c <= 8; c++ {
		for m := 1; m <= c; m++ {
			w := NewWiretapExtractor(f, m, c)
			for mask := 0; mask < 1<<c; mask++ {
				known := make([]bool, c)
				missing := 0
				for j := 0; j < c; j++ {
					if mask&(1<<j) != 0 {
						known[j] = true
					} else {
						missing++
					}
				}
				def := w.SecrecyDeficit(known)
				want := 0
				if missing < m {
					want = m - missing
				}
				if def != want {
					t.Fatalf("c=%d m=%d mask=%b: deficit %d, want %d", c, m, mask, def, want)
				}
			}
		}
	}
}

func TestWiretapExtractMatchesCoeffs(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(1))
	w := NewWiretapExtractor(f, 3, 7)
	src := randRows(rng, 7, 10)
	out := w.Extract(src)
	if len(out) != 3 {
		t.Fatalf("got %d outputs", len(out))
	}
	// Recompute row 2 by hand.
	want := make([]uint16, 10)
	for j := 0; j < 7; j++ {
		f.AddMulSlice(want, src[j], w.Coeffs().At(2, j))
	}
	for i := range want {
		if out[2][i] != want[i] {
			t.Fatalf("Extract row 2 mismatch at %d", i)
		}
	}
}

func TestWiretapBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m > c did not panic")
		}
	}()
	NewWiretapExtractor(gf.GF256(), 5, 3)
}

func TestSystematicCodeAnySubsetReconstructs(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(8) + 1
		r := rng.Intn(6)
		code := NewSystematicCode(f, k, r)
		data := randRows(rng, k, 6)
		parity := code.EncodeParity(data)
		if len(parity) != r {
			t.Fatalf("parity count %d, want %d", len(parity), r)
		}
		// Choose a random subset of exactly k symbols out of k+r.
		perm := rng.Perm(k + r)[:k]
		kn := map[int][]uint16{}
		for _, i := range perm {
			if i < k {
				kn[i] = data[i]
			} else {
				kn[i] = parity[i-k]
			}
		}
		got, err := code.Reconstruct(kn)
		if err != nil {
			t.Fatalf("trial %d (k=%d r=%d): %v", trial, k, r, err)
		}
		for i := range data {
			for j := range data[i] {
				if got[i][j] != data[i][j] {
					t.Fatalf("trial %d: data[%d][%d] mismatch", trial, i, j)
				}
			}
		}
	}
}

func TestSystematicCodeTooFewSymbols(t *testing.T) {
	f := gf.GF256()
	code := NewSystematicCode(f, 3, 2)
	data := [][]uint8{{1}, {2}, {3}}
	parity := code.EncodeParity(data)
	kn := map[int][]uint8{0: data[0], 3: parity[0]}
	if _, err := code.Reconstruct(kn); err == nil {
		t.Fatal("expected error with 2 of 3 required symbols")
	}
}

func TestSystematicCodeBadIndex(t *testing.T) {
	f := gf.GF256()
	code := NewSystematicCode(f, 2, 1)
	kn := map[int][]uint8{0: {1}, 5: {2}}
	if _, err := code.Reconstruct(kn); err == nil {
		t.Fatal("expected error for out-of-range symbol index")
	}
}

func TestRedistributionRoundTrip(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		m := rng.Intn(10) + 1
		l := rng.Intn(m + 1)
		rc := NewRedistributionCode(f, m, l)
		y := randRows(rng, m, 5)
		z := rc.EncodeZ(y)
		s := rc.EncodeS(y)
		if len(z) != m-l || len(s) != l {
			t.Fatalf("trial %d: |z|=%d |s|=%d for M=%d L=%d", trial, len(z), len(s), m, l)
		}
		// A terminal knowing a random subset of >= l y-packets completes
		// the full set and derives the same secret.
		cnt := l + rng.Intn(m-l+1)
		known := map[int][]uint16{}
		for _, i := range rng.Perm(m)[:cnt] {
			known[i] = y[i]
		}
		full, err := rc.CompleteY(known, z)
		if err != nil {
			t.Fatalf("trial %d (M=%d L=%d known=%d): %v", trial, m, l, cnt, err)
		}
		for i := range y {
			for j := range y[i] {
				if full[i][j] != y[i][j] {
					t.Fatalf("trial %d: y[%d][%d] mismatch", trial, i, j)
				}
			}
		}
		s2 := rc.EncodeS(full)
		for i := range s {
			for j := range s[i] {
				if s2[i][j] != s[i][j] {
					t.Fatalf("trial %d: secret mismatch", trial)
				}
			}
		}
	}
}

func TestRedistributionTooFewKnown(t *testing.T) {
	f := gf.GF256()
	rc := NewRedistributionCode(f, 4, 2)
	y := [][]uint8{{1}, {2}, {3}, {4}}
	z := rc.EncodeZ(y)
	known := map[int][]uint8{1: y[1]} // knows 1 < L=2
	if _, err := rc.CompleteY(known, z); err == nil {
		t.Fatal("expected error when terminal knows fewer than L y-packets")
	}
}

func TestRedistributionZSJointlyInvertible(t *testing.T) {
	// The Phase-2 secrecy argument: [Qz; Qs] must be invertible so that
	// revealing Z cannot leak anything about S when Y is uniform.
	f := gf.GF65536()
	for _, tc := range []struct{ m, l int }{{1, 0}, {1, 1}, {5, 2}, {8, 8}, {9, 1}} {
		rc := NewRedistributionCode(f, tc.m, tc.l)
		stacked := rc.ZCoeffs()
		q := rc.SCoeffs()
		// Stack and check rank.
		rows := make([][]uint16, 0, tc.m)
		for i := 0; i < stacked.Rows(); i++ {
			rows = append(rows, append([]uint16(nil), stacked.Row(i)...))
		}
		for i := 0; i < q.Rows(); i++ {
			rows = append(rows, append([]uint16(nil), q.Row(i)...))
		}
		if r := RowsToMatrix(f, rows).Rank(); r != tc.m {
			t.Fatalf("M=%d L=%d: stacked rank %d", tc.m, tc.l, r)
		}
	}
}

func TestRedistributionZeroCases(t *testing.T) {
	f := gf.GF256()
	// L = 0: no secret, everything is z.
	rc := NewRedistributionCode(f, 3, 0)
	y := [][]uint8{{1}, {2}, {3}}
	if s := rc.EncodeS(y); len(s) != 0 {
		t.Fatalf("L=0 gave %d s-packets", len(s))
	}
	// L = M: no z needed; a terminal must already know everything.
	rc = NewRedistributionCode(f, 2, 2)
	y = y[:2]
	z := rc.EncodeZ(y)
	if len(z) != 0 {
		t.Fatalf("L=M gave %d z-packets", len(z))
	}
	full, err := rc.CompleteY(map[int][]uint8{0: y[0], 1: y[1]}, z)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 2 {
		t.Fatalf("CompleteY len %d", len(full))
	}
}

func TestRedistributionRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L > M did not panic")
		}
	}()
	NewRedistributionCode(gf.GF256(), 2, 3)
}

func TestEndToEndPipelineSecrecyCertificate(t *testing.T) {
	// A miniature of the whole protocol's linear algebra: x -> y (wiretap
	// per class) -> z/s (redistribution). Verify with explicit rank
	// computations that an Eve who missed enough packets per class learns
	// nothing about s even given all z contents.
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(4))
	width := 4

	// Two classes: class A with 6 x-packets budget 2, class B with 5
	// x-packets budget 2. M = 4 y-packets, say terminal coverage gives L=3.
	xA := randRows(rng, 6, width)
	xB := randRows(rng, 5, width)
	wA := NewWiretapExtractor(f, 2, 6)
	wB := NewWiretapExtractor(f, 2, 5)
	y := append(wA.Extract(xA), wB.Extract(xB)...)
	rc := NewRedistributionCode(f, 4, 3)
	z := rc.EncodeZ(y)
	s := rc.EncodeS(y)

	// Eve missed x-packets A0, A3 (2 of class A) and B1, B2 (2 of class B).
	// Build Eve's knowledge matrix over the 11-dim source space: unit rows
	// for every received x, plus the z rows composed down to x-space.
	type comp struct{ rows [][]uint16 }
	toX := func(coeffY []uint16) []uint16 {
		// y_0..y_1 from class A (cols 0..5), y_2..y_3 from class B (cols 6..10).
		out := make([]uint16, 11)
		for yi, c := range coeffY {
			if c == 0 {
				continue
			}
			if yi < 2 {
				for j := 0; j < 6; j++ {
					out[j] ^= f.Mul(c, wA.Coeffs().At(yi, j))
				}
			} else {
				for j := 0; j < 5; j++ {
					out[6+j] ^= f.Mul(c, wB.Coeffs().At(yi-2, j))
				}
			}
		}
		return out
	}
	var eve comp
	missed := map[int]bool{0: true, 3: true, 6 + 1: true, 6 + 2: true}
	for j := 0; j < 11; j++ {
		if !missed[j] {
			row := make([]uint16, 11)
			row[j] = 1
			eve.rows = append(eve.rows, row)
		}
	}
	zc := rc.ZCoeffs()
	for i := 0; i < zc.Rows(); i++ {
		eve.rows = append(eve.rows, toX(zc.Row(i)))
	}
	sc := rc.SCoeffs()
	var secretRows [][]uint16
	for i := 0; i < sc.Rows(); i++ {
		secretRows = append(secretRows, toX(sc.Row(i)))
	}

	a := RowsToMatrix(f, eve.rows)
	both := RowsToMatrix(f, append(append([][]uint16{}, eve.rows...), secretRows...))
	unknown := both.Rank() - a.Rank()
	if unknown != 3 {
		t.Fatalf("Eve's unknown secret dimensions = %d, want 3 (perfect secrecy)", unknown)
	}
	_ = z
	_ = s
}
