// Package radio simulates the broadcast wireless substrate of the paper's
// testbed: an 802.11-style ad-hoc network in which every transmission is a
// broadcast and every receiver independently either gets the packet or
// loses it (a packet erasure channel), with erasure probabilities driven by
// distance and by artificial interference.
//
// The paper runs on real Asus WL-500gP routers plus WARP interferer nodes;
// the protocol itself, however, only ever consumes *which packets each
// receiver got*. Any physical layer collapses to a per-(tx,rx,slot)
// erasure process, which is what this package provides.
//
// Determinism: a Medium draws all erasures from a single seeded source, so
// an experiment is exactly reproducible from its seed.
package radio

import (
	"fmt"
	"math"
	"math/rand"
)

// NodeID indexes a node on the medium. The protocol uses 0..n-1 for
// terminals and n for Eve, but the medium is agnostic.
type NodeID int

// Position is a point in the testbed plane, in meters.
type Position struct{ X, Y float64 }

// DistanceTo returns the Euclidean distance to q in meters.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ErasureModel yields the probability that a packet transmitted by tx is
// erased (lost) at rx during the given time slot. Implementations must be
// deterministic functions of their arguments.
type ErasureModel interface {
	PErase(tx, rx NodeID, slot int) float64
}

// Uniform is the symmetric channel of the paper's Figure-1 analysis: every
// (tx, rx) pair, including Eve's, loses a packet independently with the
// same probability P.
type Uniform struct{ P float64 }

// PErase implements ErasureModel.
func (u Uniform) PErase(tx, rx NodeID, slot int) float64 { return u.P }

// DistanceModel derives erasure probability from node geometry:
// p = min(Base + PerMeter * distance, Cap). It approximates the monotone
// loss-vs-distance behaviour of a low-power indoor link without modelling
// fading explicitly (slot-to-slot independence plays that role).
type DistanceModel struct {
	Pos      []Position // indexed by NodeID
	Base     float64    // loss floor at zero distance
	PerMeter float64    // additional loss per meter
	Cap      float64    // upper bound on loss
}

// PErase implements ErasureModel.
func (m *DistanceModel) PErase(tx, rx NodeID, slot int) float64 {
	if int(tx) >= len(m.Pos) || int(rx) >= len(m.Pos) {
		panic(fmt.Sprintf("radio: node %d/%d outside position table", tx, rx))
	}
	p := m.Base + m.PerMeter*m.Pos[tx].DistanceTo(m.Pos[rx])
	if p > m.Cap {
		p = m.Cap
	}
	if p < 0 {
		p = 0
	}
	return p
}

// JamPattern names one artificial-interference configuration: one grid row
// and one grid column are blanketed with noise, mirroring the paper's WARP
// deployment ("one pair of antennas creates noise along a row, while
// another pair creates noise along a column").
type JamPattern struct{ Row, Col int }

// AllPatterns returns the rows x cols pattern rotation the paper uses
// (9 patterns for the 3x3 grid).
func AllPatterns(rows, cols int) []JamPattern {
	out := make([]JamPattern, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, JamPattern{Row: r, Col: c})
		}
	}
	return out
}

// Jammer layers artificial interference over a base model. During slot t,
// pattern Schedule[t % len(Schedule)] is active; a receiver whose cell lies
// in the jammed row or column suffers an additional independent erasure
// with probability JamPErase:
//
//	p = 1 - (1-base)·(1-JamPErase)
//
// The transmitter's own cell does not shield it: jamming acts at the
// receiver, which is what guarantees that *Eve*, wherever she is, is
// degraded during a known fraction of slots.
type Jammer struct {
	Base      ErasureModel
	CellOf    func(NodeID) (row, col int)
	Schedule  []JamPattern
	JamPErase float64
	// Immune lists receivers that cancel the artificial interference from
	// their received signal — the paper's §6 concern: a multi-antenna
	// adversary "may also be able to cancel out from her received signal
	// some of the artificial interference, provided the multipath channels
	// ... satisfy certain separability conditions". Immune nodes see only
	// the base channel.
	Immune map[NodeID]bool
}

// Active returns the pattern in force during the given slot.
func (j *Jammer) Active(slot int) JamPattern {
	return j.Schedule[slot%len(j.Schedule)]
}

// Jammed reports whether node id's cell is inside the noise of the slot's
// active pattern.
func (j *Jammer) Jammed(id NodeID, slot int) bool {
	p := j.Active(slot)
	r, c := j.CellOf(id)
	return r == p.Row || c == p.Col
}

// PErase implements ErasureModel.
func (j *Jammer) PErase(tx, rx NodeID, slot int) float64 {
	p := j.Base.PErase(tx, rx, slot)
	if j.Immune[rx] {
		return p
	}
	if j.Jammed(rx, slot) {
		p = 1 - (1-p)*(1-j.JamPErase)
	}
	return p
}

// Medium is the broadcast channel shared by all nodes. It applies the
// erasure model per receiver, advances time slots, and keeps the bit
// accounting the efficiency metric needs.
type Medium struct {
	model ErasureModel
	rng   *rand.Rand
	nodes int
	slot  int

	bitsSent     int64
	framesSent   int64
	reliableBits int64
}

// NewMedium creates a medium for the given number of nodes. All erasures
// derive from the given seed.
func NewMedium(model ErasureModel, nodes int, seed int64) *Medium {
	if nodes <= 0 {
		panic("radio: medium needs at least one node")
	}
	return &Medium{model: model, rng: rand.New(rand.NewSource(seed)), nodes: nodes}
}

// Nodes returns the number of nodes on the medium.
func (m *Medium) Nodes() int { return m.nodes }

// Slot returns the current time slot.
func (m *Medium) Slot() int { return m.slot }

// AdvanceSlot moves to the next time slot (the testbed rotates the
// interference pattern this way).
func (m *Medium) AdvanceSlot() { m.slot++ }

// SetSlot jumps to an absolute slot number.
func (m *Medium) SetSlot(s int) { m.slot = s }

// Broadcast transmits one unreliable frame of the given size from tx.
// It returns, for every node, whether the frame was received. The
// transmitter always "receives" its own frame. Bits are added to the
// transmitted-bits accounting.
func (m *Medium) Broadcast(tx NodeID, bits int) []bool {
	m.bitsSent += int64(bits)
	m.framesSent++
	out := make([]bool, m.nodes)
	for rx := 0; rx < m.nodes; rx++ {
		if NodeID(rx) == tx {
			out[rx] = true
			continue
		}
		p := m.model.PErase(tx, NodeID(rx), m.slot)
		out[rx] = m.rng.Float64() >= p
	}
	return out
}

// BroadcastReliable transmits a frame that the link layer delivers to
// everyone (acknowledgment + retransmission in the real system). Following
// the paper's conservative model, Eve receives reliable frames too, so no
// reception vector is needed. The bits are charged to the accounting once;
// retransmission overhead is outside the efficiency definition used in §4
// (which counts protocol payload bits), but callers can charge extra via
// ChargeBits if they model ARQ cost explicitly.
func (m *Medium) BroadcastReliable(tx NodeID, bits int) {
	m.bitsSent += int64(bits)
	m.reliableBits += int64(bits)
	m.framesSent++
}

// ChargeBits adds extra transmitted bits to the accounting (e.g. ACK
// frames of a modelled ARQ).
func (m *Medium) ChargeBits(bits int) { m.bitsSent += int64(bits) }

// BitsSent returns the total bits transmitted on the medium so far.
func (m *Medium) BitsSent() int64 { return m.bitsSent }

// FramesSent returns the number of frames transmitted so far.
func (m *Medium) FramesSent() int64 { return m.framesSent }

// ReliableBits returns the bits sent over the reliable control plane.
func (m *Medium) ReliableBits() int64 { return m.reliableBits }

// ResetAccounting zeroes the bit counters (the slot clock is preserved).
func (m *Medium) ResetAccounting() {
	m.bitsSent, m.framesSent, m.reliableBits = 0, 0, 0
}
