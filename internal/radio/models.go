package radio

import (
	"math"
	"math/rand"
	"sync"
)

// SelfJam implements the paper's §3.3 suggestion that "ultimately, the
// terminals themselves could generate artificial interference": instead of
// dedicated interferer nodes, one terminal per slot emits noise.
//
// Semantics per slot t with designated jammer J(t):
//
//   - the jammer cannot receive anything while jamming (half-duplex:
//     erasure probability 1 at rx == J(t));
//   - if the transmitter IS the designated jammer, it transmits instead of
//     jamming and the slot is effectively un-jammed (a node cannot do
//     both);
//   - every other receiver suffers an extra erasure whose probability
//     decays linearly with distance from the jammer:
//     jam(d) = JamPErase · max(0, 1 - d/Range).
//
// Compared to the WARP interferers of §4 this trades infrastructure for
// capacity: the jamming terminal loses a slot's worth of reception, which
// shows up directly in the protocol's reception classes.
type SelfJam struct {
	Base ErasureModel
	// Pos maps NodeID to position (jamming attenuates with distance).
	Pos []Position
	// JammerOf designates the jamming node for a slot; return a negative
	// NodeID for an un-jammed slot.
	JammerOf func(slot int) NodeID
	// JamPErase is the erasure probability at zero distance from the
	// jammer; Range is the distance at which the effect reaches zero.
	JamPErase float64
	Range     float64
}

// PErase implements ErasureModel.
func (s *SelfJam) PErase(tx, rx NodeID, slot int) float64 {
	p := s.Base.PErase(tx, rx, slot)
	j := s.JammerOf(slot)
	if j < 0 || j == tx {
		return p
	}
	if j == rx {
		return 1 // the jammer deafens itself
	}
	d := s.Pos[j].DistanceTo(s.Pos[rx])
	jam := 0.0
	if s.Range > 0 {
		jam = s.JamPErase * math.Max(0, 1-d/s.Range)
	}
	if jam == 0 {
		return p
	}
	return 1 - (1-p)*(1-jam)
}

// RotatingJammer returns a JammerOf function that cycles the jamming duty
// through nodes 0..n-1, one per slot.
func RotatingJammer(n int) func(slot int) NodeID {
	return func(slot int) NodeID {
		if n <= 0 {
			return -1
		}
		return NodeID(slot % n)
	}
}

// GilbertElliott is a two-state Markov (burst-loss) channel model: each
// directed link evolves independently between a Good and a Bad state at
// slot granularity, with different loss probabilities in each. It breaks
// the independence assumption behind the protocol's binomial budgeting in
// a controlled way — the ablation that matters for the paper's §6 concern
// that real channels are less cooperative than the analysis.
//
// The model is stateful per link and expects slots to be queried in
// non-decreasing order per link (the Medium advances time monotonically);
// a query for an earlier slot re-simulates the link from slot zero, which
// keeps the model deterministic for a given seed at some cost.
type GilbertElliott struct {
	// PLossGood and PLossBad are per-packet loss probabilities in each
	// state.
	PLossGood, PLossBad float64
	// PGoodToBad and PBadToGood are per-slot transition probabilities.
	PGoodToBad, PBadToGood float64
	// Seed drives the per-link state evolution.
	Seed int64

	mu    sync.Mutex
	links map[linkKey]*linkState
}

type linkKey struct{ tx, rx NodeID }

type linkState struct {
	rng  *rand.Rand
	slot int  // next slot the rng will decide a transition INTO
	bad  bool // current state
}

// NewGilbertElliott constructs the model. The stationary loss rate is
// pi_bad·PLossBad + pi_good·PLossGood with
// pi_bad = PGoodToBad / (PGoodToBad + PBadToGood).
func NewGilbertElliott(pLossGood, pLossBad, pGoodToBad, pBadToGood float64, seed int64) *GilbertElliott {
	return &GilbertElliott{
		PLossGood:  pLossGood,
		PLossBad:   pLossBad,
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		Seed:       seed,
		links:      make(map[linkKey]*linkState),
	}
}

// StationaryLoss returns the long-run average loss probability.
func (g *GilbertElliott) StationaryLoss() float64 {
	den := g.PGoodToBad + g.PBadToGood
	if den == 0 {
		return g.PLossGood
	}
	piBad := g.PGoodToBad / den
	return piBad*g.PLossBad + (1-piBad)*g.PLossGood
}

// PErase implements ErasureModel.
func (g *GilbertElliott) PErase(tx, rx NodeID, slot int) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := linkKey{tx, rx}
	st, ok := g.links[key]
	if !ok || slot < st.slot-1 {
		// Fresh link, or a rewind: re-simulate deterministically.
		st = &linkState{
			rng: rand.New(rand.NewSource(g.Seed ^ (int64(tx)*1_000_003 + int64(rx)*7_777_777 + 12345))),
		}
		g.links[key] = st
	}
	for st.slot <= slot {
		p := g.PGoodToBad
		if st.bad {
			p = g.PBadToGood
		}
		if st.rng.Float64() < p {
			st.bad = !st.bad
		}
		st.slot++
	}
	if st.bad {
		return g.PLossBad
	}
	return g.PLossGood
}
