package radio

import (
	"math"
	"testing"
)

func TestPositionDistance(t *testing.T) {
	a := Position{0, 0}
	b := Position{3, 4}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %v", d)
	}
	if d := a.DistanceTo(a); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
}

func TestUniformModel(t *testing.T) {
	u := Uniform{P: 0.3}
	if got := u.PErase(0, 1, 5); got != 0.3 {
		t.Fatalf("PErase = %v", got)
	}
}

func TestDistanceModel(t *testing.T) {
	m := &DistanceModel{
		Pos:      []Position{{0, 0}, {1, 0}, {10, 0}},
		Base:     0.1,
		PerMeter: 0.05,
		Cap:      0.4,
	}
	if got := m.PErase(0, 1, 0); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("1m loss = %v", got)
	}
	if got := m.PErase(0, 2, 0); got != 0.4 {
		t.Fatalf("capped loss = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	m.PErase(0, 9, 0)
}

func TestAllPatterns(t *testing.T) {
	ps := AllPatterns(3, 3)
	if len(ps) != 9 {
		t.Fatalf("pattern count %d", len(ps))
	}
	seen := map[JamPattern]bool{}
	for _, p := range ps {
		if p.Row < 0 || p.Row > 2 || p.Col < 0 || p.Col > 2 {
			t.Fatalf("pattern out of range: %+v", p)
		}
		seen[p] = true
	}
	if len(seen) != 9 {
		t.Fatal("patterns not distinct")
	}
}

func TestJammer(t *testing.T) {
	cells := map[NodeID][2]int{0: {0, 0}, 1: {1, 1}, 2: {2, 2}}
	j := &Jammer{
		Base:      Uniform{P: 0.1},
		CellOf:    func(id NodeID) (int, int) { c := cells[id]; return c[0], c[1] },
		Schedule:  []JamPattern{{Row: 0, Col: 1}, {Row: 2, Col: 2}},
		JamPErase: 0.9,
	}
	// Slot 0: pattern {0,1}. Node 0 in row 0 -> jammed; node 1 in col 1 ->
	// jammed; node 2 at (2,2) -> clear.
	if !j.Jammed(0, 0) || !j.Jammed(1, 0) || j.Jammed(2, 0) {
		t.Fatal("slot 0 jam flags wrong")
	}
	// Slot 1: pattern {2,2}: node 2 jammed (row and col), node 0 clear.
	if j.Jammed(0, 1) || !j.Jammed(2, 1) {
		t.Fatal("slot 1 jam flags wrong")
	}
	// Composition: 1-(1-0.1)(1-0.9) = 0.91.
	if got := j.PErase(2, 0, 0); math.Abs(got-0.91) > 1e-12 {
		t.Fatalf("jammed loss = %v", got)
	}
	if got := j.PErase(0, 2, 0); got != 0.1 {
		t.Fatalf("clear loss = %v", got)
	}
	// Schedule wraps.
	if j.Active(2) != (JamPattern{Row: 0, Col: 1}) {
		t.Fatal("schedule does not wrap")
	}
}

func TestMediumDeterminism(t *testing.T) {
	run := func() [][]bool {
		m := NewMedium(Uniform{P: 0.5}, 4, 1234)
		var rec [][]bool
		for i := 0; i < 20; i++ {
			rec = append(rec, m.Broadcast(0, 800))
			m.AdvanceSlot()
		}
		return rec
	}
	a, b := run(), run()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("runs diverge at frame %d node %d", i, j)
			}
		}
	}
}

func TestMediumReceptionStatistics(t *testing.T) {
	// With p=0.3, long-run reception rate should be ~0.7 for others and
	// exactly 1.0 for the transmitter.
	m := NewMedium(Uniform{P: 0.3}, 3, 99)
	const trials = 20000
	counts := make([]int, 3)
	for i := 0; i < trials; i++ {
		rec := m.Broadcast(1, 100)
		for n, ok := range rec {
			if ok {
				counts[n]++
			}
		}
	}
	if counts[1] != trials {
		t.Fatalf("transmitter received %d of its own %d frames", counts[1], trials)
	}
	for _, n := range []int{0, 2} {
		rate := float64(counts[n]) / trials
		if math.Abs(rate-0.7) > 0.02 {
			t.Fatalf("node %d reception rate %v, want ~0.7", n, rate)
		}
	}
}

func TestMediumAccounting(t *testing.T) {
	m := NewMedium(Uniform{P: 0}, 2, 1)
	m.Broadcast(0, 800)
	m.BroadcastReliable(1, 200)
	m.ChargeBits(50)
	if m.BitsSent() != 1050 {
		t.Fatalf("BitsSent = %d", m.BitsSent())
	}
	if m.FramesSent() != 2 {
		t.Fatalf("FramesSent = %d", m.FramesSent())
	}
	if m.ReliableBits() != 200 {
		t.Fatalf("ReliableBits = %d", m.ReliableBits())
	}
	m.ResetAccounting()
	if m.BitsSent() != 0 || m.FramesSent() != 0 || m.ReliableBits() != 0 {
		t.Fatal("ResetAccounting incomplete")
	}
}

func TestMediumSlotControls(t *testing.T) {
	m := NewMedium(Uniform{P: 0}, 2, 1)
	if m.Slot() != 0 {
		t.Fatal("initial slot nonzero")
	}
	m.AdvanceSlot()
	m.AdvanceSlot()
	if m.Slot() != 2 {
		t.Fatalf("slot = %d", m.Slot())
	}
	m.SetSlot(7)
	if m.Slot() != 7 {
		t.Fatalf("slot = %d", m.Slot())
	}
	if m.Nodes() != 2 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
}

func TestMediumValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-node medium did not panic")
		}
	}()
	NewMedium(Uniform{}, 0, 1)
}

func TestJammerRaisesEveLoss(t *testing.T) {
	// The point of the interference: averaged over a full pattern
	// rotation, every node sees materially higher loss than the base
	// channel alone.
	cells := func(id NodeID) (int, int) { return int(id) / 3, int(id) % 3 }
	j := &Jammer{
		Base:      Uniform{P: 0.1},
		CellOf:    cells,
		Schedule:  AllPatterns(3, 3),
		JamPErase: 0.8,
	}
	for id := NodeID(0); id < 9; id++ {
		jammedSlots := 0
		for s := 0; s < 9; s++ {
			if j.Jammed(id, s) {
				jammedSlots++
			}
		}
		// Each cell is in the jammed row for 3 patterns and jammed column
		// for 3 patterns, overlapping once: 5 of 9.
		if jammedSlots != 5 {
			t.Fatalf("node %d jammed in %d slots, want 5", id, jammedSlots)
		}
	}
}
