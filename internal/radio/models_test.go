package radio

import (
	"math"
	"testing"
)

func TestSelfJamSemantics(t *testing.T) {
	pos := []Position{{0, 0}, {1, 0}, {2, 0}, {10, 0}}
	sj := &SelfJam{
		Base:      Uniform{P: 0.1},
		Pos:       pos,
		JammerOf:  RotatingJammer(3),
		JamPErase: 0.8,
		Range:     2,
	}
	// Slot 0: jammer is node 0.
	if got := sj.PErase(1, 0, 0); got != 1 {
		t.Fatalf("jammer should be deaf: %v", got)
	}
	// Transmitter is the jammer: slot effectively un-jammed.
	if got := sj.PErase(0, 1, 0); got != 0.1 {
		t.Fatalf("tx==jammer should see base loss: %v", got)
	}
	// Node 1 at distance 1 from jammer 0: jam = 0.8*(1-1/2) = 0.4;
	// p = 1-(1-0.1)(1-0.4) = 0.46.
	if got := sj.PErase(2, 1, 0); math.Abs(got-0.46) > 1e-12 {
		t.Fatalf("near jam loss = %v", got)
	}
	// Node 3 at distance 10 > Range: unaffected.
	if got := sj.PErase(2, 3, 0); got != 0.1 {
		t.Fatalf("far jam loss = %v", got)
	}
	// Slot 1: jammer rotates to node 1.
	if got := sj.PErase(0, 1, 1); got != 1 {
		t.Fatalf("rotation broken: %v", got)
	}
	// Negative jammer disables jamming.
	sj.JammerOf = func(int) NodeID { return -1 }
	if got := sj.PErase(0, 1, 5); got != 0.1 {
		t.Fatalf("unjammed slot loss = %v", got)
	}
}

func TestRotatingJammer(t *testing.T) {
	j := RotatingJammer(3)
	for s := 0; s < 9; s++ {
		if j(s) != NodeID(s%3) {
			t.Fatalf("slot %d jammer %d", s, j(s))
		}
	}
	if RotatingJammer(0)(5) >= 0 {
		t.Fatal("zero nodes should disable jamming")
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	ge := NewGilbertElliott(0.05, 0.9, 0.1, 0.3, 42)
	want := 0.1/(0.1+0.3)*0.9 + 0.3/(0.1+0.3)*0.05
	if got := ge.StationaryLoss(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stationary = %v, want %v", got, want)
	}
	// Degenerate chain.
	if got := NewGilbertElliott(0.2, 0.9, 0, 0, 1).StationaryLoss(); got != 0.2 {
		t.Fatalf("degenerate stationary = %v", got)
	}

	// Empirical check through a medium: long-run loss rate near the
	// stationary value.
	med := NewMedium(ge, 2, 7)
	losses, total := 0, 40000
	for i := 0; i < total; i++ {
		got := med.Broadcast(0, 100)
		if !got[1] {
			losses++
		}
		med.AdvanceSlot()
	}
	rate := float64(losses) / float64(total)
	if math.Abs(rate-want) > 0.02 {
		t.Fatalf("empirical loss %v, want ~%v", rate, want)
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With slow transitions, consecutive slots share fate far more often
	// than an iid channel at the same average loss: measure the
	// probability that slot t+1 is lossy given slot t was.
	ge := NewGilbertElliott(0.01, 0.95, 0.02, 0.06, 99)
	med := NewMedium(ge, 2, 3)
	var lossy []bool
	for i := 0; i < 30000; i++ {
		got := med.Broadcast(0, 10)
		lossy = append(lossy, !got[1])
		med.AdvanceSlot()
	}
	both, prev := 0, 0
	for i := 1; i < len(lossy); i++ {
		if lossy[i-1] {
			prev++
			if lossy[i] {
				both++
			}
		}
	}
	condLoss := float64(both) / float64(prev)
	avg := ge.StationaryLoss()
	if condLoss < avg+0.15 {
		t.Fatalf("no burstiness: P(loss|loss) = %v vs avg %v", condLoss, avg)
	}
}

func TestGilbertElliottDeterminismAndRewind(t *testing.T) {
	mk := func() []float64 {
		ge := NewGilbertElliott(0.1, 0.8, 0.2, 0.2, 5)
		var out []float64
		for s := 0; s < 50; s++ {
			out = append(out, ge.PErase(0, 1, s))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at slot %d", i)
		}
	}
	// Rewind: querying an old slot after advancing re-simulates and must
	// agree with the first pass.
	ge := NewGilbertElliott(0.1, 0.8, 0.2, 0.2, 5)
	first := make([]float64, 50)
	for s := 0; s < 50; s++ {
		first[s] = ge.PErase(0, 1, s)
	}
	if got := ge.PErase(0, 1, 10); got != first[10] {
		t.Fatalf("rewind mismatch: %v vs %v", got, first[10])
	}
	// Distinct links evolve independently (different fates somewhere).
	ge2 := NewGilbertElliott(0, 1, 0.3, 0.3, 11)
	same := true
	for s := 0; s < 200; s++ {
		if ge2.PErase(0, 1, s) != ge2.PErase(0, 2, s) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("links 0->1 and 0->2 perfectly correlated")
	}
}
