package keystream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/packet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// engineStats are the derivation-side counters, atomic because every
// worker's block engine updates them concurrently.
type engineStats struct {
	rounds, productive, aborted atomic.Int64
	verifyOK, verifyMismatch    atomic.Int64
	ackTimeouts, skippedWaits   atomic.Int64
	shed                        atomic.Int64
}

// memberHealth is the stream-level view of which group members answer
// reception reports in time. It is shared across blocks: a member that
// went quiet during block b should not cost block b+1 a full report
// deadline every round. That sharing is what bounds a 10x-slowed member's
// damage to a handful of slow rounds over the whole stream instead of a
// 10x stream slowdown.
type memberHealth struct {
	mu         sync.Mutex
	consecMiss []int
	skips      []int
	// Lifetime totals across all members, for Stats: every skipped wait,
	// and the subset that were liveness re-probes.
	skipsTotal  int64
	probesTotal int64
}

const (
	healthMissLimit  = 3  // consecutive misses before we stop waiting
	healthProbeEvery = 16 // skipped waits between liveness re-probes
)

func newMemberHealth(n int) *memberHealth {
	return &memberHealth{consecMiss: make([]int, n), skips: make([]int, n)}
}

// shouldWait reports whether a round's report deadline should cover
// member t. Unresponsive members are skipped, with a periodic re-probe so
// a recovered member rejoins the wait set.
func (h *memberHealth) shouldWait(t int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.consecMiss[t] < healthMissLimit {
		return true
	}
	h.skips[t]++
	h.skipsTotal++
	if h.skips[t]%healthProbeEvery == 0 {
		h.probesTotal++
		return true
	}
	return false
}

// totals reports the lifetime skip and re-probe counts.
func (h *memberHealth) totals() (skips, probes int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.skipsTotal, h.probesTotal
}

func (h *memberHealth) ok(t int) {
	h.mu.Lock()
	h.consecMiss[t] = 0
	h.skips[t] = 0
	h.mu.Unlock()
}

func (h *memberHealth) miss(t int) {
	h.mu.Lock()
	h.consecMiss[t]++
	h.mu.Unlock()
}

// BlockContext carries the stream-level machinery a block derivation (or
// a custom Source) runs against.
type BlockContext struct {
	cfg    *Config
	es     *engineStats
	health *memberHealth
	ins    *streamInstruments
}

// Config returns the stream's (filled) configuration.
func (bc *BlockContext) Config() *Config { return bc.cfg }

// derive produces block idx into dst via the configured source.
func (s *Stream) derive(idx int64, dst []byte) error {
	bc := &BlockContext{cfg: &s.cfg, es: &s.es, health: s.health, ins: &s.ins}
	if s.cfg.Source != nil {
		return s.cfg.Source(bc, idx, dst)
	}
	return bc.deriveProtocol(idx, dst)
}

// exchRound is one round's transmit-phase outcome, handed from the
// exchange goroutine to the compute goroutine.
type exchRound struct {
	round int
	xSym  [][]core.Sym
}

// verifyResult is one terminal's derived secret for one round.
type verifyResult struct {
	round  int
	secret []byte // nil: elimination failed (diverged reception)
}

// deriveProtocol runs protocol rounds on a fresh per-block bus until the
// block's secret bytes cover dst.
//
// Determinism: the leader derives each round's reception sets from the
// Delivered schedule, never from the live reception reports — the
// reports' content only feeds memberHealth and the stats. Since the block
// bus erases by the same schedule, a healthy member's live view matches
// the schedule exactly; a stalled member whose frames were shed diverges,
// fails its own elimination, and is counted in VerifyMismatch — without
// ever touching the bytes. That is the invariant that makes
// (seed, block index) ⇒ bytes hold under arbitrary timing.
//
// Pipelining: the exchange goroutine runs round r+1's packet broadcast
// and report collection while the compute goroutine is still planning and
// eliminating round r (exchCh is the 2-deep pipeline window); terminals
// split their half with core.ReceiveRoundInto as soon as the y-announce
// arrives and core.PartialRound.Eliminate once the z-packets complete.
func (bc *BlockContext) deriveProtocol(idx int64, dst []byte) error {
	cfg := bc.cfg
	blockSeed := BlockSeed(cfg.Seed, idx)
	leader := 0
	if cfg.Rotate {
		leader = int(((idx % int64(cfg.Terminals)) + int64(cfg.Terminals)) % int64(cfg.Terminals))
	}
	session := uint32(uint64(blockSeed))

	var bus transport.Bus
	var err error
	if cfg.NewBus != nil {
		bus, err = cfg.NewBus(idx, blockSeed)
	} else {
		bus = NewSimBus(blockSeed, cfg.Erasure, &bc.es.shed)
	}
	if err != nil {
		return fmt.Errorf("keystream: block %d bus: %w", idx, err)
	}
	defer bus.Close()

	// Register every endpoint before the first transmission (a broadcast
	// domain only delivers to attached receivers).
	eps := make([]transport.Endpoint, cfg.Terminals)
	for t := 0; t < cfg.Terminals; t++ {
		if eps[t], err = bus.Endpoint(t); err != nil {
			return fmt.Errorf("keystream: block %d endpoint %d: %w", idx, t, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()

	cc := core.Config{
		Terminals:    cfg.Terminals,
		XPerRound:    cfg.XPerRound,
		PayloadBytes: cfg.PayloadBytes,
		Rounds:       1,
		Seed:         blockSeed,
	}
	if err := cc.Validate(); err != nil {
		return err
	}

	// Authoritative per-round secrets, for the verification collector.
	var authMu sync.Mutex
	auth := make(map[int][]byte)

	// Terminal goroutines: the live-workload and verification layer.
	verifyCh := make(chan verifyResult, 64)
	var termWG sync.WaitGroup
	for t := 0; t < cfg.Terminals; t++ {
		if t == leader {
			continue
		}
		termWG.Add(1)
		go func(t int) {
			defer termWG.Done()
			bc.runTerminal(eps[t], t, leader, session, verifyCh)
		}(t)
	}
	var collectWG sync.WaitGroup
	collectWG.Add(1)
	go func() {
		defer collectWG.Done()
		for vr := range verifyCh {
			authMu.Lock()
			want := auth[vr.round]
			authMu.Unlock()
			if vr.secret != nil && want != nil && bytes.Equal(vr.secret, want) {
				bc.es.verifyOK.Add(1)
			} else {
				bc.es.verifyMismatch.Add(1)
			}
		}
	}()

	// Exchange goroutine: broadcasts round r+1's x-packets and collects
	// its reception reports while compute still owns round r.
	exchCh := make(chan exchRound, 2)
	var exchWG sync.WaitGroup
	exchWG.Add(1)
	go func() {
		defer exchWG.Done()
		defer close(exchCh)
		timed := bc.ins.exchangeLat != nil
		for r := 0; r < 1<<16; r++ {
			if ctx.Err() != nil {
				return
			}
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			er, err := bc.exchange(ctx, eps[leader], r, leader, session, blockSeed)
			if timed {
				bc.ins.exchangeLat.ObserveSince(t0)
			}
			if err != nil {
				return
			}
			select {
			case exchCh <- er:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Compute loop: plan, leader-side elimination, control broadcasts.
	written := 0
	consecAborts := 0
	var derr error
	computeTimed := bc.ins.computeLat != nil
	for er := range exchCh {
		var computeT0 time.Time
		if computeTimed {
			computeT0 = time.Now()
		}
		r := er.round
		h := wire.Header{From: uint8(leader), Session: session, Round: uint16(r)}
		recv := scheduleRecv(blockSeed, r, leader, cfg.Terminals, cfg.XPerRound, cfg.Erasure)
		ectx := &core.EstimatorContext{
			Terminals: cfg.Terminals,
			Leader:    leader,
			NumX:      cfg.XPerRound,
			Recv:      recv,
			Classes:   core.BuildClasses(cfg.Terminals, leader, cfg.XPerRound, recv),
		}
		ectx.Classes = cc.Pooling.Pools(ectx)
		plan := core.BuildPlan(ectx, cc.Estimator)
		bc.es.rounds.Add(1)
		if plan.L == 0 {
			bc.es.aborted.Add(1)
			if computeTimed {
				bc.ins.computeLat.ObserveSince(computeT0)
			}
			consecAborts++
			ah := h
			ah.Type = wire.TypeBeacon
			eps[leader].SendCtrl(wire.Marshal(&wire.Beacon{Header: ah, Kind: wire.BeaconRoundAbort}))
			if consecAborts >= cfg.MaxAbortRounds {
				derr = fmt.Errorf("keystream: block %d: %d consecutive unproductive rounds (erasure too high or channel dead)",
					idx, consecAborts)
				break
			}
			continue
		}
		consecAborts = 0
		lr := core.ComputeLeaderRound(plan, er.xSym)
		secret := core.SecretBytes(lr.Secret)
		if computeTimed {
			bc.ins.computeLat.ObserveSince(computeT0)
		}
		authMu.Lock()
		auth[r] = secret
		authMu.Unlock()
		if err := eps[leader].SendCtrl(wire.Marshal(core.BuildYAnnounce(h, plan))); err != nil {
			derr = err
			break
		}
		for _, zp := range core.BuildZPackets(h, plan, lr.Z) {
			if err := eps[leader].SendCtrl(wire.Marshal(zp)); err != nil {
				derr = err
				break
			}
		}
		if derr != nil {
			break
		}
		if err := eps[leader].SendCtrl(wire.Marshal(core.BuildSAnnounce(h, plan))); err != nil {
			derr = err
			break
		}
		bc.es.productive.Add(1)
		written += copy(dst[written:], secret)
		if written >= len(dst) {
			break
		}
	}
	if derr == nil && written < len(dst) {
		derr = fmt.Errorf("keystream: block %d underrun (%d/%d bytes): %w",
			idx, written, len(dst), firstErr(ctx.Err(), errors.New("exchange stopped")))
	}

	// Teardown: stop the exchange, close the bus (releases any member
	// wedged in an injected stall), drain the workload layer.
	cancel()
	bus.Close()
	exchWG.Wait()
	for range exchCh { // release a pipelined round the compute loop abandoned
	}
	termWG.Wait()
	close(verifyCh)
	collectWG.Wait()
	return derr
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// scheduleRecv derives round r's reception sets from the Delivered
// schedule — the authoritative inputs to the round plan.
func scheduleRecv(blockSeed int64, r, leader, terminals, numX int, p float64) []*packet.IDSet {
	recv := make([]*packet.IDSet, terminals)
	for t := 0; t < terminals; t++ {
		s := packet.NewIDSet(numX)
		for seq := 0; seq < numX; seq++ {
			if t == leader || Delivered(blockSeed, r, seq, t, p) {
				s.Add(packet.ID(seq))
			}
		}
		recv[t] = s
	}
	return recv
}

// exchange runs round r's transmit phase on the leader endpoint: x-packet
// broadcasts, the end-of-X beacon, then the soft report deadline. Reports
// are pacing and health input only — their content never reaches the
// round plan (see deriveProtocol).
func (bc *BlockContext) exchange(ctx context.Context, ep transport.Endpoint, r, leader int, session uint32, blockSeed int64) (exchRound, error) {
	cfg := bc.cfg
	h := wire.Header{From: uint8(leader), Session: session, Round: uint16(r)}
	rng := rand.New(rand.NewSource(blockSeed + int64(r)*65537 + int64(leader)))
	batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
	xSym := make([][]core.Sym, cfg.XPerRound)
	for i, pkt := range batch {
		xSym[i] = gf.Symbols16(pkt.Payload)
		xh := h
		xh.Type = wire.TypeX
		if err := ep.SendData(wire.Marshal(&wire.XPacket{Header: xh, Seq: uint32(pkt.ID), Payload: pkt.Payload})); err != nil {
			return exchRound{}, err
		}
	}
	bh := h
	bh.Type = wire.TypeBeacon
	if err := ep.SendCtrl(wire.Marshal(&wire.Beacon{Header: bh, Kind: wire.BeaconEndOfX, Value: uint32(cfg.XPerRound)})); err != nil {
		return exchRound{}, err
	}
	bc.collectReports(ctx, ep, r, leader, session)
	return exchRound{round: r, xSym: xSym}, nil
}

// collectReports waits — up to AckWait, tightened to AckSlack once the
// first report lands — for reception reports from members the health
// tracker still considers responsive.
func (bc *BlockContext) collectReports(ctx context.Context, ep transport.Endpoint, r, leader int, session uint32) {
	cfg := bc.cfg
	waitFor := make([]bool, cfg.Terminals)
	need := 0
	for t := 0; t < cfg.Terminals; t++ {
		if t == leader {
			continue
		}
		if bc.health.shouldWait(t) {
			waitFor[t] = true
			need++
		} else {
			bc.es.skippedWaits.Add(1)
		}
	}
	if need == 0 {
		return
	}
	acked := make([]bool, cfg.Terminals)
	timer := time.NewTimer(cfg.AckWait)
	defer timer.Stop()
	first := false
	got := 0
	for got < need {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			bc.es.ackTimeouts.Add(1)
			for t := 0; t < cfg.Terminals; t++ {
				if waitFor[t] && !acked[t] {
					bc.health.miss(t)
				}
			}
			return
		case env, ok := <-ep.Recv():
			if !ok {
				return
			}
			m, err := wire.Unmarshal(env.Frame)
			if err != nil {
				continue
			}
			ar, isAck := m.(*wire.AckReport)
			if !isAck || ar.Header.Session != session || int(ar.Header.Round) != r {
				continue
			}
			t := int(ar.Header.From)
			if t == leader || t >= cfg.Terminals || acked[t] {
				continue
			}
			acked[t] = true
			bc.health.ok(t)
			if waitFor[t] {
				got++
			}
			if !first {
				first = true
				if !timer.Stop() {
					<-timer.C
				}
				timer.Reset(cfg.AckSlack)
			}
		}
	}
}

// termRound is a terminal's in-flight state for one round.
type termRound struct {
	recvX map[packet.ID][]core.Sym
	ya    *wire.YAnnounce
	zs    []*wire.ZPacket
	sa    *wire.SAnnounce
	pr    core.PartialRound
	recvd bool // ReceiveRoundInto has run
}

// runTerminal is one non-leader member's event loop: collect x-packets,
// report receptions, run the receive half as soon as the y-announce
// lands, eliminate once the z-packets complete, and push the derived
// secret for verification. It is deliberately tolerant: missing frames
// (shed during a stall) surface as elimination failures or abandoned
// rounds — verification mismatches, never block failures.
func (bc *BlockContext) runTerminal(ep transport.Endpoint, self, leader int, session uint32, verifyCh chan<- verifyResult) {
	rounds := make(map[int]*termRound)
	var scratch [2]core.RoundScratch // ping-pong: round r+1's receive half must not clobber round r's pending elimination
	maxRound := -1

	state := func(r int) *termRound {
		st, ok := rounds[r]
		if !ok {
			st = &termRound{recvX: make(map[packet.ID][]core.Sym)}
			rounds[r] = st
		}
		return st
	}
	finish := func(r int, st *termRound) {
		m := 0
		for _, cb := range st.ya.Classes {
			m += len(cb.Coeffs)
		}
		if len(st.zs) < m-len(st.sa.Coeffs) {
			return // z stragglers still in flight
		}
		var res verifyResult
		res.round = r
		if st.recvd {
			if rows, err := st.pr.Eliminate(st.zs, st.sa); err == nil {
				res.secret = core.SecretBytes(rows)
			}
		}
		verifyCh <- res
		delete(rounds, r)
	}

	for env := range ep.Recv() {
		m, err := wire.Unmarshal(env.Frame)
		if err != nil {
			continue
		}
		h := m.Hdr()
		if h.Session != session || int(h.From) != leader {
			continue
		}
		r := int(h.Round)
		if r > maxRound {
			maxRound = r
			// Garbage-collect rounds the pipeline has moved past: an
			// incomplete round that had reached its announce phase means
			// frames this member needed were shed. The threshold must
			// exceed the pipeline depth — the exchange goroutine runs up
			// to 3 rounds ahead of the compute goroutine's control
			// broadcasts (exchCh holds 2 plus 1 in flight), so round r's
			// announce can legitimately arrive after round r+3's x-packets.
			for old, st := range rounds {
				if old < maxRound-3 {
					if st.ya != nil {
						verifyCh <- verifyResult{round: old}
					}
					delete(rounds, old)
				}
			}
		}
		switch mm := m.(type) {
		case *wire.XPacket:
			if len(mm.Payload)%2 == 0 {
				state(r).recvX[packet.ID(mm.Seq)] = gf.Symbols16(mm.Payload)
			}
		case *wire.Beacon:
			switch mm.Kind {
			case wire.BeaconEndOfX:
				st := state(r)
				numX := int(mm.Value)
				mine := packet.NewIDSet(numX)
				for id := range st.recvX {
					if int(id) < numX {
						mine.Add(id)
					}
				}
				ah := wire.Header{From: uint8(self), Session: session, Round: uint16(r), Type: wire.TypeAck}
				// A closed or stalled bus makes this fail or block; both are
				// fine — the leader's deadline does not depend on us.
				ep.SendCtrl(wire.Marshal(&wire.AckReport{Header: ah, NumX: uint32(numX), Bitmap: mine.Words()}))
			case wire.BeaconRoundAbort:
				delete(rounds, r) // unproductive round: nothing to verify
			}
		case *wire.YAnnounce:
			st := state(r)
			st.ya = mm
			pr, err := core.ReceiveRoundInto(&scratch[r%2], st.recvX, mm)
			if err == nil {
				st.pr = pr
				st.recvd = true
			}
			if st.sa != nil {
				finish(r, st)
			}
		case *wire.ZPacket:
			st := state(r)
			dup := false
			for _, z := range st.zs {
				if z.Index == mm.Index {
					dup = true
					break
				}
			}
			if !dup {
				st.zs = append(st.zs, mm)
			}
			if st.ya != nil && st.sa != nil {
				finish(r, st)
			}
		case *wire.SAnnounce:
			st := state(r)
			st.sa = mm
			if st.ya != nil {
				finish(r, st)
			}
		}
	}
}
