package keystream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestConcurrentReaders: sequential and random-access readers share one
// protocol-engine stream concurrently; every reader sees the reference
// bytes. Run under -race this is the suite's data-race probe for the
// cache, the cursor, and the prefetch hint.
func TestConcurrentReaders(t *testing.T) {
	cfg := protoCfg(1234)
	const nblocks = 8
	want := readRef(t, cfg, nblocks)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// Random-access readers at independent offsets.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for trial := 0; trial < 16; trial++ {
				off := rng.Int63n(int64(len(want) - 1))
				n := 1 + rng.Intn(len(want)-int(off))
				got := make([]byte, n)
				if _, err := s.ReadAt(got, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want[off:int(off)+n]) {
					errs <- errors.New("concurrent ReadAt diverged from reference")
					return
				}
			}
		}(g)
	}
	// Sequential readers sharing the cursor: each byte of the prefix is
	// handed to exactly one of them, so their interleaved chunks must
	// re-assemble to the reference prefix.
	var seqMu sync.Mutex
	type chunk struct {
		pos int64
		b   []byte
	}
	var chunks []chunk
	var pos int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				buf := make([]byte, 700) // odd size: straddles blocks
				seqMu.Lock()
				if pos >= int64(len(want)) {
					seqMu.Unlock()
					return
				}
				// Read under the chunk lock so (pos, bytes) pairs stay
				// attributable; Read itself is also safe without it.
				n, err := s.Read(buf)
				if n > 0 {
					chunks = append(chunks, chunk{pos, buf[:n]})
					pos += int64(n)
				}
				seqMu.Unlock()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, c := range chunks {
		end := c.pos + int64(len(c.b))
		if end > int64(len(want)) {
			t.Fatalf("sequential chunk overran: [%d, %d)", c.pos, end)
		}
		if !bytes.Equal(c.b, want[c.pos:end]) {
			t.Fatalf("sequential chunk at %d diverged from reference", c.pos)
		}
	}
}

// TestCloseRacingReadAtNeverZeroizes: a reader racing Close must get the
// true key-material bytes for every position it reports read — never a
// prefix silently zeroized under it. Close used to wipe cached block
// buffers while ReadAt was still copying from them outside the lock;
// held blocks (demand > 0) now defer their zeroization to release().
// Under -race this is also the direct probe for that write-during-copy.
func TestCloseRacingReadAtNeverZeroizes(t *testing.T) {
	// Large blocks from the cheap GF(2^8) source widen the copy window the
	// race has to land in.
	const blockSize = 64 << 10
	const nblocks = 4
	cfg := Config{
		Terminals: 2, XPerRound: 4, PayloadBytes: 4,
		Seed:      77,
		BlockSize: blockSize,
		Source:    XOFSource8(77),
	}
	src := XOFSource8(77)
	want := make([]byte, nblocks*blockSize)
	for i := 0; i < nblocks; i++ {
		if err := src(nil, int64(i), want[i*blockSize:(i+1)*blockSize]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 32; trial++ {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Derive everything up front so the readers below run hot on cache
		// hits — pure acquire/copy/release — when Close lands.
		if _, err := s.ReadAt(make([]byte, len(want)), 0); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				got := make([]byte, len(want))
				for {
					n, rerr := s.ReadAt(got, 0)
					if !bytes.Equal(got[:n], want[:n]) {
						t.Errorf("reader %d: %d reported bytes diverged from reference (zeroized under a racing Close?)", g, n)
						return
					}
					if rerr != nil {
						if !errors.Is(rerr, ErrClosed) {
							t.Errorf("reader %d: %v", g, rerr)
						}
						return
					}
				}
			}(g)
		}
		time.Sleep(200 * time.Microsecond) // let the readers get mid-copy
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// TestCloseDuringRead: closing the stream while readers are blocked on
// underived blocks wakes them with ErrClosed (or lets them finish) and
// never deadlocks.
func TestCloseDuringRead(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		cfg := protoCfg(int64(5000 + trial))
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, 4*cfg.BlockSize)
				// Far offsets so some reads are certainly still waiting on
				// derivation when Close lands.
				_, err := s.ReadAt(buf, int64(g)*int64(len(buf)))
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("reader %d: %v", g, err)
				}
			}(g)
		}
		if trial%2 == 0 {
			// Give readers a head start on even trials so Close races
			// mid-derivation, not just pre-derivation.
			buf := make([]byte, 1)
			_, _ = s.ReadAt(buf, 0)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		// Post-close reads fail fast.
		if _, err := s.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close ReadAt: %v, want ErrClosed", err)
		}
		if _, err := io.ReadFull(s, make([]byte, 1)); !errors.Is(err, ErrClosed) {
			t.Fatalf("post-close Read: %v, want ErrClosed", err)
		}
	}
}
