package keystream

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// The fuzz oracle: one shared stream over the cheap GF(2^8) source plus
// a full sequential snapshot of its prefix. Shared because the corpus
// hits it thousands of times; the stream is addressed, not consumed, so
// sharing cannot leak state between inputs.
var fuzzOracle struct {
	once sync.Once
	s    *Stream
	full []byte
	err  error
}

const fuzzSpace = 128 << 10

func fuzzSetup() error {
	fuzzOracle.once.Do(func() {
		cfg := Config{
			Terminals: 2, XPerRound: 4, PayloadBytes: 4,
			Seed:      777,
			BlockSize: 1 << 12,
			Source:    XOFSource8(777),
		}
		s, err := New(cfg)
		if err != nil {
			fuzzOracle.err = err
			return
		}
		full := make([]byte, fuzzSpace)
		if _, err := io.ReadFull(s, full); err != nil {
			fuzzOracle.err = err
			return
		}
		fuzzOracle.s, fuzzOracle.full = s, full
	})
	return fuzzOracle.err
}

// FuzzStreamRanges: any (offset, length) random-access read within the
// snapshotted space returns exactly the bytes one full sequential read
// saw there — the addressed-not-consumed contract under arbitrary range
// shapes (boundary straddles, single bytes, whole-space reads).
func FuzzStreamRanges(f *testing.F) {
	f.Add(int64(0), uint16(1))
	f.Add(int64(4095), uint16(2))        // block boundary straddle
	f.Add(int64(4096), uint16(4096))     // exactly one block
	f.Add(int64(12345), uint16(54321))   // many blocks, odd ends
	f.Add(int64(fuzzSpace-1), uint16(7)) // tail clamp
	f.Fuzz(func(t *testing.T, off int64, ln uint16) {
		if err := fuzzSetup(); err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = -off
		}
		off %= fuzzSpace
		n := int64(ln)
		if n == 0 {
			n = 1
		}
		if off+n > fuzzSpace {
			n = fuzzSpace - off
		}
		got := make([]byte, n)
		if _, err := fuzzOracle.s.ReadAt(got, off); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, fuzzOracle.full[off:off+n]) {
			t.Fatalf("ReadAt(%d, %d) != sequential snapshot", off, n)
		}
	})
}
