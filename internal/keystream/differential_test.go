package keystream

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

// protoCfg is the small protocol-engine shape the differential suite
// runs: GF(2^16) rounds, small blocks so multi-block ranges stay cheap.
func protoCfg(seed int64) Config {
	return Config{
		Terminals:    3,
		XPerRound:    64,
		PayloadBytes: 16,
		Erasure:      0.45,
		Seed:         seed,
		Rotate:       true,
		BlockSize:    512,
		Timeout:      30 * time.Second,
	}
}

// readRef derives blocks [0, n) through the plain sequential oracle.
func readRef(t *testing.T, cfg Config, nblocks int) []byte {
	t.Helper()
	full := make([]byte, nblocks*cfg.BlockSize)
	for i := 0; i < nblocks; i++ {
		if err := ReferenceBlock(cfg, int64(i), full[i*cfg.BlockSize:(i+1)*cfg.BlockSize]); err != nil {
			t.Fatalf("reference block %d: %v", i, err)
		}
	}
	return full
}

// TestStreamMatchesReference: bytes produced by the pipelined engine —
// concurrent workers, overlapped exchange/elimination, soft report
// deadlines — are byte-identical to the plain sequential oracle.
func TestStreamMatchesReference(t *testing.T) {
	cfg := protoCfg(99)
	const nblocks = 6
	want := readRef(t, cfg, nblocks)

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := make([]byte, len(want))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined stream bytes != sequential reference derivation")
	}
	st := s.Stats()
	if st.VerifyMismatch != 0 {
		t.Fatalf("verify mismatches with no fault injection: %+v", st)
	}
	if st.Blocks < nblocks {
		t.Fatalf("stats count %d blocks, want >= %d", st.Blocks, nblocks)
	}
}

// TestReadAtMatchesSequential: random-access reads at arbitrary
// (offset, length) — spanning block boundaries and short tails — return
// exactly the bytes a sequential read of the same range sees. Runs the
// protocol engine (GF(2^16)); TestReadAtMatchesSequentialGF8 covers the
// GF(2^8) source arm.
func TestReadAtMatchesSequential(t *testing.T) {
	cfg := protoCfg(7)
	const nblocks = 6
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	full := make([]byte, nblocks*cfg.BlockSize)
	if _, err := io.ReadFull(s, full); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 64; trial++ {
		off := rng.Int63n(int64(len(full) - 1))
		n := 1 + rng.Intn(len(full)-int(off))
		got := make([]byte, n)
		if _, err := s.ReadAt(got, off); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, full[off:int(off)+n]) {
			t.Fatalf("ReadAt(%d, %d) != sequential bytes", off, n)
		}
	}

	// The deliberate edge shapes: exact block, boundary straddle, one-byte
	// tail, and a range ending exactly at a boundary.
	bsz := int64(cfg.BlockSize)
	for _, r := range []struct{ off, n int64 }{
		{0, bsz},
		{bsz - 1, 2},
		{bsz/2 + 1, bsz},
		{2*bsz - 1, 1},
		{bsz + 3, bsz - 3},
	} {
		got := make([]byte, r.n)
		if _, err := s.ReadAt(got, r.off); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", r.off, r.n, err)
		}
		if !bytes.Equal(got, full[r.off:r.off+r.n]) {
			t.Fatalf("ReadAt(%d, %d) != sequential bytes", r.off, r.n)
		}
	}
}

// TestReadAtMatchesSequentialGF8 is the property test on the GF(2^8)
// source arm: cheap enough to sweep many more random ranges over a much
// larger address space.
func TestReadAtMatchesSequentialGF8(t *testing.T) {
	cfg := Config{
		Terminals: 2, XPerRound: 4, PayloadBytes: 4,
		Seed:      21,
		BlockSize: 4096,
		Source:    XOFSource8(21),
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const total = 64 << 10
	full := make([]byte, total)
	if _, err := io.ReadFull(s, full); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 400; trial++ {
		off := rng.Int63n(total - 1)
		n := 1 + rng.Intn(int(total-off))
		got := make([]byte, n)
		if _, err := s.ReadAt(got, off); err != nil {
			t.Fatalf("ReadAt(%d, %d): %v", off, n, err)
		}
		if !bytes.Equal(got, full[off:int(off)+n]) {
			t.Fatalf("ReadAt(%d, %d) != sequential bytes", off, n)
		}
	}
}

// TestRangeReader: the io.Reader view over [off, off+n) delivers exactly
// n bytes — including ranges that end mid-block — then io.EOF.
func TestRangeReader(t *testing.T) {
	cfg := protoCfg(42)
	const nblocks = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	full := make([]byte, nblocks*cfg.BlockSize)
	if _, err := s.ReadAt(full, 0); err != nil {
		t.Fatal(err)
	}
	bsz := int64(cfg.BlockSize)
	for _, r := range []struct{ off, n int64 }{
		{0, 2*bsz + 17},
		{bsz - 5, 11},
		{3 * bsz, 1},
	} {
		got, err := io.ReadAll(s.RangeReader(r.off, r.n))
		if err != nil {
			t.Fatalf("RangeReader(%d, %d): %v", r.off, r.n, err)
		}
		if int64(len(got)) != r.n {
			t.Fatalf("RangeReader(%d, %d): got %d bytes", r.off, r.n, len(got))
		}
		if !bytes.Equal(got, full[r.off:r.off+r.n]) {
			t.Fatalf("RangeReader(%d, %d) != sequential bytes", r.off, r.n)
		}
	}
}

// TestRotationChangesBlockBytes: with Rotate the leader differs per
// block, and the same (seed, index) under different rotation settings
// yields different blocks — a cheap guard that the leader schedule is
// actually wired into derivation.
func TestRotationChangesBlockBytes(t *testing.T) {
	with := protoCfg(5)
	without := protoCfg(5)
	without.Rotate = false
	a := make([]byte, with.BlockSize)
	b := make([]byte, without.BlockSize)
	// Block 1's leader is terminal 1 with rotation, 0 without.
	if err := ReferenceBlock(with, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := ReferenceBlock(without, 1, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("rotation did not change block 1's bytes")
	}
}
