package keystream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/transport"
	"repro/internal/wire"
)

// mix64 is the splitmix64 finalizer: a cheap, well-mixed keyed hash used
// for block seeds and per-frame erasure coins.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BlockSeed derives block b's seed from the stream seed. Every value a
// block's bytes depend on (x-payload rng, erasure coins) is keyed off
// this, which is what makes blocks independently re-derivable.
func BlockSeed(streamSeed, block int64) int64 {
	return int64(mix64(mix64(uint64(streamSeed)) ^ uint64(block)))
}

// Delivered is the content-keyed erasure coin: whether terminal `to`
// receives x-packet `seq` of round `round` under erasure probability p.
// It is a pure function of its arguments — no rng stream, so delivery
// outcomes cannot depend on frame arrival order, injected delays, or
// which receivers are attached. That property is what lets the block
// engine compute reception sets from the schedule (identical to what the
// live bus delivers) and keeps stream bytes re-derivable under any
// timing.
func Delivered(blockSeed int64, round, seq, to int, p float64) bool {
	h := mix64(uint64(blockSeed) ^ mix64(uint64(round)<<40|uint64(seq)<<16|uint64(to)))
	// 53 uniform mantissa bits, as rand.Float64 constructs its values.
	return float64(h>>11)/(1<<53) >= p
}

// simBus is an in-process broadcast bus whose data-plane erasures follow
// Delivered, and which sheds frames instead of failing when a receiver's
// inbox overflows. Shedding is what models a SIGSTOP'd member: its node
// goroutine stops draining Recv, the inbox fills, and the bus drops that
// member's frames (counted in Stats.ShedFrames) while everyone else —
// and the block's byte production — continues.
type simBus struct {
	blockSeed int64
	erasure   float64
	shed      *atomic.Int64 // stream-level shed counter (may be nil)

	mu     sync.Mutex
	eps    map[int]*simEndpoint
	bits   atomic.Int64
	closed bool
}

const simInbox = 4096

// NewSimBus builds the default deterministic block bus. Endpoints are
// created lazily, like ChanBus; shed, when non-nil, accumulates the
// frames dropped on full inboxes.
func NewSimBus(blockSeed int64, erasure float64, shed *atomic.Int64) transport.Bus {
	return &simBus{blockSeed: blockSeed, erasure: erasure, shed: shed, eps: make(map[int]*simEndpoint)}
}

type simEndpoint struct {
	bus *simBus
	id  int
	ch  chan transport.Env
}

func (b *simBus) Endpoint(id int) (transport.Endpoint, error) {
	if id < 0 {
		return nil, fmt.Errorf("keystream: endpoint id %d", id)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, transport.ErrClosed
	}
	if ep, ok := b.eps[id]; ok {
		return ep, nil
	}
	ep := &simEndpoint{bus: b, id: id, ch: make(chan transport.Env, simInbox)}
	b.eps[id] = ep
	return ep, nil
}

func (b *simBus) BitsSent() int64 { return b.bits.Load() }

func (b *simBus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, ep := range b.eps {
		close(ep.ch)
	}
	return nil
}

// deliver hands env to ep without ever blocking: a full inbox sheds the
// frame. Caller holds b.mu.
func (b *simBus) deliver(ep *simEndpoint, env transport.Env) {
	select {
	case ep.ch <- env:
	default:
		if b.shed != nil {
			b.shed.Add(1)
		}
	}
}

// broadcast fans frame out to every endpoint but the sender. For x-packet
// data frames, per-receiver delivery follows the Delivered coin; control
// frames and non-x data are delivered to everyone.
func (b *simBus) broadcast(from int, frame []byte, reliable bool) error {
	var round, seq int
	isX := false
	if !reliable {
		if m, err := wire.Unmarshal(frame); err == nil {
			if xp, ok := m.(*wire.XPacket); ok {
				isX = true
				round = int(xp.Header.Round)
				seq = int(xp.Seq)
			}
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return transport.ErrClosed
	}
	b.bits.Add(int64(len(frame)) * 8)
	env := transport.Env{From: from, Reliable: reliable, Frame: frame}
	for id, ep := range b.eps {
		if id == from {
			continue
		}
		if isX && !Delivered(b.blockSeed, round, seq, id, b.erasure) {
			continue
		}
		b.deliver(ep, env)
	}
	return nil
}

func (e *simEndpoint) ID() int { return e.id }

func (e *simEndpoint) SendData(frame []byte) error {
	return e.bus.broadcast(e.id, frame, false)
}

func (e *simEndpoint) SendCtrl(frame []byte) error {
	return e.bus.broadcast(e.id, frame, true)
}

func (e *simEndpoint) Recv() <-chan transport.Env { return e.ch }

func (e *simEndpoint) Close() error { return nil }
