package keystream

import (
	"bytes"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// injectorFleet wires an Injector around every per-block bus a stream
// creates, applying the fleet's current fault set to each new block. The
// engine closes each block's bus (the injector) at block teardown, which
// releases that block's stall gates — mirroring how a SIGSTOP'd process
// stops mattering once its session is torn down.
type injectorFleet struct {
	mu    sync.Mutex
	slow  map[int]time.Duration
	stall map[int]bool
	made  int
	shed  atomic.Int64
}

func newInjectorFleet() *injectorFleet {
	return &injectorFleet{slow: make(map[int]time.Duration), stall: make(map[int]bool)}
}

func (fl *injectorFleet) slowMember(id int, d time.Duration) {
	fl.mu.Lock()
	fl.slow[id] = d
	fl.mu.Unlock()
}

func (fl *injectorFleet) stallMember(id int) {
	fl.mu.Lock()
	fl.stall[id] = true
	fl.mu.Unlock()
}

func (fl *injectorFleet) newBus(erasure float64) func(block, blockSeed int64) (transport.Bus, error) {
	return func(block, blockSeed int64) (transport.Bus, error) {
		in := NewInjector(NewSimBus(blockSeed, erasure, &fl.shed))
		fl.mu.Lock()
		for id, d := range fl.slow {
			in.SlowMember(id, d)
		}
		for id, st := range fl.stall {
			if st {
				in.StallMember(id)
			}
		}
		fl.made++
		fl.mu.Unlock()
		return in, nil
	}
}

// stallCfg is the stall suite's protocol shape: a short report deadline
// so an unresponsive member costs bounded time before memberHealth stops
// waiting for it. The leader is pinned (Rotate off): a slowed or stalled
// LEADER slows its blocks by construction — determinism says those bytes
// come from that leader's rounds — so the resilience property under test
// is about faulty non-leader members.
func stallCfg(seed int64) Config {
	cfg := protoCfg(seed)
	cfg.Rotate = false
	cfg.PayloadBytes = 64 // fewer rounds per block: stall overhead amortizes honestly
	cfg.AckWait = 5 * time.Millisecond
	cfg.AckSlack = time.Millisecond
	return cfg
}

func timedRead(t *testing.T, cfg Config, nbytes int) ([]byte, time.Duration, Stats) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, nbytes)
	start := time.Now()
	if _, err := io.ReadFull(s, buf); err != nil {
		t.Fatal(err)
	}
	return buf, time.Since(start), s.Stats()
}

// TestStreamSlowMemberKeepsDelivering: one member answering 10x slower
// than the report deadline does not gate byte production — the stream
// keeps delivering the exact reference bytes, and total throughput
// degrades by less than 2x, because memberHealth stops waiting for the
// laggard after a bounded number of missed deadlines.
func TestStreamSlowMemberKeepsDelivering(t *testing.T) {
	cfg := stallCfg(303)
	nbytes := 24 * cfg.BlockSize
	want, baseline, _ := timedRead(t, cfg, nbytes)

	fl := newInjectorFleet()
	fl.slowMember(1, 10*cfg.AckWait) // 10x the deadline: every report misses
	slowed := cfg
	slowed.NewBus = fl.newBus(cfg.Erasure)
	got, dur, st := timedRead(t, slowed, nbytes)

	if !bytes.Equal(got, want) {
		t.Fatal("slow member changed the stream's bytes")
	}
	if st.SkippedWaits == 0 {
		t.Fatalf("health never stopped waiting for the slow member: %+v", st)
	}
	// The acceptance bound, with an absolute grace floor so scheduler
	// noise on tiny baselines cannot flake the ratio.
	limit := 2*baseline + 100*time.Millisecond
	if dur >= limit {
		t.Fatalf("slowed read took %v, baseline %v (limit %v): degradation >= 2x", dur, baseline, limit)
	}
	t.Logf("baseline %v, one member 10x-slowed %v (%.2fx), stats %+v",
		baseline, dur, float64(dur)/float64(baseline), st)
}

// TestStreamStalledMemberMidStream: a member that stops answering
// entirely mid-stream (its sends gate forever, its inbox overflows —
// the SIGSTOP shape) does not stop the stream. Bytes before and after
// the stall match the reference derivation, and closing the stream
// leaks no goroutines even with a member permanently wedged in a send.
func TestStreamStalledMemberMidStream(t *testing.T) {
	cfg := stallCfg(404)
	const nblocks = 16
	want := readRef(t, cfg, nblocks)

	before := runtime.NumGoroutine()
	fl := newInjectorFleet()
	run := cfg
	run.NewBus = fl.newBus(cfg.Erasure)
	s, err := New(run)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, len(want))
	half := len(got) / 2
	if _, err := io.ReadFull(s, got[:half]); err != nil {
		t.Fatalf("pre-stall read: %v", err)
	}
	fl.stallMember(2) // every block bus from here on wedges member 2
	if _, err := io.ReadFull(s, got[half:]); err != nil {
		t.Fatalf("post-stall read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stalled member changed the stream's bytes")
	}
	st := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked after close: %d before, %d after\n%s", before, g, buf[:n])
	}
	t.Logf("stall stats: %+v, fleet shed %d", st, fl.shed.Load())
}
