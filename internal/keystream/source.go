package keystream

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/packet"
)

// XOFSource8 is a cheap deterministic block source built on the GF(2^8)
// kernel: a splitmix counter stream mixed by byte-field multiply-add
// passes. It exists so the stream's framing and offset arithmetic can be
// property-tested (and fuzzed) over the GF(2^8) kernel quickly, without
// running protocol rounds — the GF(2^16) coverage comes from the default
// protocol deriver.
func XOFSource8(seed int64) Source {
	f := gf.GF256()
	return func(_ *BlockContext, idx int64, dst []byte) error {
		bs := uint64(BlockSeed(seed, idx))
		var word [8]byte
		for i := 0; i < len(dst); i += 8 {
			binary.LittleEndian.PutUint64(word[:], mix64(bs^uint64(i)))
			copy(dst[i:], word[:])
		}
		// Two multiply-add passes over a rotation of the block, with
		// block-keyed nonzero coefficients: dst ^= c * rot1(dst0).
		tmp := make([]byte, len(dst))
		copy(tmp, dst[1:])
		if len(dst) > 0 {
			tmp[len(dst)-1] = dst[0]
		}
		f.AddMulSlice(dst, tmp, byte(bs)|1)
		f.AddMulSlice(dst, tmp, byte(bs>>8)|3)
		return nil
	}
}

// ReferenceBlock derives block idx of a protocol stream with a plain
// sequential loop — no bus, no goroutines, no pipeline — straight from
// the Delivered schedule. It is the differential-test oracle the
// pipelined engine must match byte for byte.
func ReferenceBlock(cfg Config, idx int64, dst []byte) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	blockSeed := BlockSeed(cfg.Seed, idx)
	leader := 0
	if cfg.Rotate {
		leader = int(((idx % int64(cfg.Terminals)) + int64(cfg.Terminals)) % int64(cfg.Terminals))
	}
	cc := core.Config{
		Terminals:    cfg.Terminals,
		XPerRound:    cfg.XPerRound,
		PayloadBytes: cfg.PayloadBytes,
		Rounds:       1,
		Seed:         blockSeed,
	}
	if err := cc.Validate(); err != nil {
		return err
	}
	written := 0
	consecAborts := 0
	for r := 0; r < 1<<16 && written < len(dst); r++ {
		rng := rand.New(rand.NewSource(blockSeed + int64(r)*65537 + int64(leader)))
		batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
		xSym := make([][]core.Sym, cfg.XPerRound)
		for i, pkt := range batch {
			xSym[i] = gf.Symbols16(pkt.Payload)
		}
		recv := scheduleRecv(blockSeed, r, leader, cfg.Terminals, cfg.XPerRound, cfg.Erasure)
		ectx := &core.EstimatorContext{
			Terminals: cfg.Terminals,
			Leader:    leader,
			NumX:      cfg.XPerRound,
			Recv:      recv,
			Classes:   core.BuildClasses(cfg.Terminals, leader, cfg.XPerRound, recv),
		}
		ectx.Classes = cc.Pooling.Pools(ectx)
		plan := core.BuildPlan(ectx, cc.Estimator)
		if plan.L == 0 {
			consecAborts++
			if consecAborts >= cfg.MaxAbortRounds {
				return fmt.Errorf("keystream: reference block %d: %d consecutive unproductive rounds", idx, consecAborts)
			}
			continue
		}
		consecAborts = 0
		lr := core.ComputeLeaderRound(plan, xSym)
		written += copy(dst[written:], core.SecretBytes(lr.Secret))
	}
	if written < len(dst) {
		return fmt.Errorf("keystream: reference block %d underrun (%d/%d)", idx, written, len(dst))
	}
	return nil
}
