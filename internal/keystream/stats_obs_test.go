package keystream

import (
	"testing"

	"repro/internal/obs"
)

// The cache and member-health counters added for observability must agree
// between Stats() (the JSON wire form served by the daemon) and the obs
// registry (the /metrics form), and must actually classify acquisitions:
// a re-read of a resident block is a hit, eviction pressure is counted.
func TestCacheCountersInStatsAndRegistry(t *testing.T) {
	const blockSize = 4 << 10
	reg := obs.New()
	s, err := New(Config{
		Terminals: 2, XPerRound: 4, PayloadBytes: 4,
		Seed:        9,
		BlockSize:   blockSize,
		CacheBlocks: 2, // tiny cache: a 6-block sweep must evict
		Window:      1,
		Source:      XOFSource8(9),
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	buf := make([]byte, blockSize)
	// Sweep six blocks (misses + evictions), then re-read block 5, which
	// is still resident (a hit).
	for i := int64(0); i < 6; i++ {
		if _, err := s.ReadAt(buf, i*blockSize); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReadAt(buf, 5*blockSize); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	// Seven single-block acquisitions total; the prefetcher decides how
	// many were already resident, but every one is exactly one of the two.
	if st.CacheHits+st.CacheMisses != 7 {
		t.Errorf("hits(%d) + misses(%d) = %d, want 7 (one per acquisition)",
			st.CacheHits, st.CacheMisses, st.CacheHits+st.CacheMisses)
	}
	if st.CacheMisses < 1 {
		t.Errorf("CacheMisses = %d, want >= 1", st.CacheMisses)
	}
	if st.CacheHits < 1 {
		t.Errorf("CacheHits = %d, want >= 1", st.CacheHits)
	}
	if st.CacheEvictions < 1 {
		t.Errorf("CacheEvictions = %d, want >= 1", st.CacheEvictions)
	}

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"thinaird_keystream_cache_hits_total":      st.CacheHits,
		"thinaird_keystream_cache_misses_total":    st.CacheMisses,
		"thinaird_keystream_cache_evictions_total": st.CacheEvictions,
	} {
		if got := snap.Total(name); got != float64(want) {
			t.Errorf("%s = %v, want %d (same as Stats)", name, got, want)
		}
	}
	if snap.Total("thinaird_keystream_block_derive_seconds") < 6 {
		t.Errorf("block derive histogram count = %v, want >= 6",
			snap.Total("thinaird_keystream_block_derive_seconds"))
	}
}

// memberHealth's lifetime totals must track per-member skip bookkeeping:
// an unhealthy member accrues skips, and every healthProbeEvery-th skip
// is a re-probe.
func TestMemberHealthTotals(t *testing.T) {
	h := newMemberHealth(2)
	for i := 0; i < healthMissLimit; i++ {
		h.miss(1)
	}
	for i := 0; i < 2*healthProbeEvery; i++ {
		h.shouldWait(1)
	}
	h.shouldWait(0) // healthy member: no skip
	skips, probes := h.totals()
	if skips != 2*healthProbeEvery {
		t.Errorf("skips = %d, want %d", skips, 2*healthProbeEvery)
	}
	if probes != 2 {
		t.Errorf("probes = %d, want 2", probes)
	}
	h.ok(1)
	if !h.shouldWait(1) {
		t.Error("recovered member should be waited on again")
	}
	if s2, _ := h.totals(); s2 != skips {
		t.Errorf("healthy wait moved skip total: %d -> %d", skips, s2)
	}
}
