package keystream

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestStreamSoak: 64 concurrent readers — sequential drainers and
// random-access rangers — hammer one stream while one group member runs
// 10x slower than the report deadline. Every byte every reader sees must
// match the reference derivation, and teardown must leak nothing.
// Gated behind THINAIR_SOAK=1 (the CI soak job) and skipped under
// -short.
func TestStreamSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping stream soak in -short mode")
	}
	if os.Getenv("THINAIR_SOAK") != "1" {
		t.Skip("set THINAIR_SOAK=1 to run the stream soak")
	}

	cfg := stallCfg(60606)
	const nblocks = 32
	want := readRef(t, cfg, nblocks)

	before := runtime.NumGoroutine()
	fl := newInjectorFleet()
	fl.slowMember(1, 10*cfg.AckWait)
	run := cfg
	run.NewBus = fl.newBus(cfg.Erasure)
	s, err := New(run)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 64
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for trial := 0; trial < 24; trial++ {
				off := rng.Int63n(int64(len(want) - 1))
				n := 1 + rng.Intn(min(len(want)-int(off), 3*cfg.BlockSize))
				got := make([]byte, n)
				if _, err := s.ReadAt(got, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want[off:int(off)+n]) {
					errs <- fmt.Errorf("soak reader diverged from reference at (%d, %d)", off, n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.VerifyMismatch != 0 {
		// A merely-slow member still receives every frame; only a stalled
		// one diverges from the schedule.
		t.Fatalf("slow (not stalled) member caused verify mismatches: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked after soak: %d before, %d after\n%s", before, g, buf[:n])
	}
	t.Logf("soak stats: %+v", st)
}
