package keystream

import (
	"sync"
	"time"

	"repro/internal/transport"
)

// Injector wraps a transport.Bus and degrades chosen members: per-send
// delay (a slow radio), outright transmit loss (a dead one), or a
// SIGSTOP-style stall that blocks the member's sends entirely until
// resumed. It is the stall-injection suite's fault model: because the
// degraded member's own node goroutine is what blocks in Send, a stalled
// member also stops draining its inbox — exactly the failure shape of a
// stopped process — and the underlying simBus sheds its frames while the
// stream keeps producing.
type Injector struct {
	transport.Bus

	mu    sync.Mutex
	delay map[int]time.Duration
	drop  map[int]bool
	stall map[int]chan struct{} // closed = resumed
	done  chan struct{}
}

// NewInjector wraps bus. The zero state injects nothing.
func NewInjector(bus transport.Bus) *Injector {
	return &Injector{
		Bus:   bus,
		delay: make(map[int]time.Duration),
		drop:  make(map[int]bool),
		stall: make(map[int]chan struct{}),
		done:  make(chan struct{}),
	}
}

// SlowMember makes every send by member id take at least d.
func (in *Injector) SlowMember(id int, d time.Duration) {
	in.mu.Lock()
	in.delay[id] = d
	in.mu.Unlock()
}

// DropMember silently discards member id's transmissions (data and
// control) without blocking it.
func (in *Injector) DropMember(id int, drop bool) {
	in.mu.Lock()
	in.drop[id] = drop
	in.mu.Unlock()
}

// StallMember blocks member id's next send until ResumeMember(id) or
// Close. The member's goroutine wedges inside Send — it stops reading its
// inbox, like a SIGSTOP'd process.
func (in *Injector) StallMember(id int) {
	in.mu.Lock()
	if _, ok := in.stall[id]; !ok {
		in.stall[id] = make(chan struct{})
	}
	in.mu.Unlock()
}

// ResumeMember releases a stalled member.
func (in *Injector) ResumeMember(id int) {
	in.mu.Lock()
	if gate, ok := in.stall[id]; ok {
		close(gate)
		delete(in.stall, id)
	}
	in.mu.Unlock()
}

// Close releases every stalled member (so their goroutines can exit) and
// closes the wrapped bus.
func (in *Injector) Close() error {
	in.mu.Lock()
	select {
	case <-in.done:
	default:
		close(in.done)
	}
	for id, gate := range in.stall {
		close(gate)
		delete(in.stall, id)
	}
	in.mu.Unlock()
	return in.Bus.Close()
}

func (in *Injector) Endpoint(id int) (transport.Endpoint, error) {
	ep, err := in.Bus.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &injEndpoint{in: in, ep: ep}, nil
}

type injEndpoint struct {
	in *Injector
	ep transport.Endpoint
}

func (e *injEndpoint) ID() int                     { return e.ep.ID() }
func (e *injEndpoint) Recv() <-chan transport.Env  { return e.ep.Recv() }
func (e *injEndpoint) Close() error                { return e.ep.Close() }
func (e *injEndpoint) SendData(frame []byte) error { return e.send(frame, e.ep.SendData) }
func (e *injEndpoint) SendCtrl(frame []byte) error { return e.send(frame, e.ep.SendCtrl) }

func (e *injEndpoint) send(frame []byte, fwd func([]byte) error) error {
	in := e.in
	id := e.ep.ID()
	in.mu.Lock()
	d := in.delay[id]
	drop := in.drop[id]
	gate := in.stall[id]
	in.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-in.done:
		}
	}
	if d > 0 {
		// Interruptible by Close: a slow member's backlog of delayed sends
		// stops costing time once its block's bus is torn down (the block's
		// bytes are already schedule-determined without it).
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-in.done:
			t.Stop()
		}
	}
	if drop {
		return nil
	}
	return fwd(frame)
}
