package keystream

import (
	"bytes"
	"testing"
	"time"
)

func gf8Cfg(seed int64) Config {
	return Config{
		Terminals: 2, XPerRound: 4, PayloadBytes: 4,
		Seed:      seed,
		BlockSize: 4096,
		Source:    XOFSource8(seed),
	}
}

// TestStrideDifferential: a strided ReadAt workload — the access pattern
// of an OTP consumer padding every Nth record — returns bytes identical
// to a plain stream reading the same ranges, while the detector engages
// and prefetches along the lattice instead of the contiguous window.
func TestStrideDifferential(t *testing.T) {
	const strideBlocks = 5 // prime vs the window so contiguous prefetch never helps
	const reads = 24
	const readLen = 96

	strided, err := New(gf8Cfg(77))
	if err != nil {
		t.Fatal(err)
	}
	defer strided.Close()
	plain, err := New(gf8Cfg(77))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	bsz := int64(strided.BlockSize())
	for i := 0; i < reads; i++ {
		off := int64(i) * strideBlocks * bsz
		a := make([]byte, readLen)
		if _, err := strided.ReadAt(a, off); err != nil {
			t.Fatalf("strided ReadAt(%d): %v", off, err)
		}
		b := make([]byte, readLen)
		if _, err := plain.ReadAt(b, off); err != nil {
			t.Fatalf("plain ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("strided read at offset %d diverged from the plain stream", off)
		}
	}

	st := strided.Stats()
	if st.StridePrefetches == 0 {
		t.Fatalf("stride detector never engaged over %d strided reads: %+v", reads, st)
	}
	strided.mu.Lock()
	active := strided.strideActive()
	delta := strided.strideDelta
	strided.mu.Unlock()
	if !active || delta != strideBlocks {
		t.Fatalf("detector state after strided reads: active=%v delta=%d, want active delta=%d",
			active, delta, strideBlocks)
	}
}

// TestStridePrefetchLandsAhead: once the stride is established, the
// workers derive upcoming lattice blocks before any reader demands them.
func TestStridePrefetchLandsAhead(t *testing.T) {
	s, err := New(gf8Cfg(31))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const strideBlocks = 7
	bsz := int64(s.BlockSize())
	buf := make([]byte, 32)
	// Four reads at the same jump: the delta repeats twice after being
	// set, and the stride locks in.
	var last int64
	for i := int64(0); i < 4; i++ {
		last = i * strideBlocks * bsz
		if _, err := s.ReadAt(buf, last); err != nil {
			t.Fatal(err)
		}
	}

	next := last/bsz + strideBlocks
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		bs, ok := s.blocks[next]
		derived := ok && bs.data != nil
		s.mu.Unlock()
		if derived {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("block %d never prefetched along the established stride", next)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStrideResetsOnSequential: re-reads and sequential continuation
// break an established stride — the contiguous hint window is the right
// policy again and the lattice must not linger.
func TestStrideResetsOnSequential(t *testing.T) {
	s, err := New(gf8Cfg(59))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	bsz := int64(s.BlockSize())
	buf := make([]byte, 16)
	for i := int64(0); i < 4; i++ {
		if _, err := s.ReadAt(buf, i*3*bsz); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	active := s.strideActive()
	s.mu.Unlock()
	if !active {
		t.Fatal("stride of 3 blocks not established after 4 reads")
	}

	// Two sequential block reads: delta 1 twice → detector resets.
	if _, err := s.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(buf, bsz); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	active = s.strideActive()
	s.mu.Unlock()
	if active {
		t.Fatal("stride survived sequential reads")
	}
}
