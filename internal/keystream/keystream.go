// Package keystream exposes a session's key material as a randomly
// addressable, pipelined byte stream — the bulk-OTP workload surface the
// fixed-size pool draws of internal/keypool cannot serve efficiently.
//
// The stream is framed into fixed-size blocks. Each block is a
// deterministically re-derivable round batch: block index b and the
// stream seed fully determine the protocol rounds the block runs (their
// x-payloads AND their erasure outcomes, via a content-keyed coin — see
// bus.go), so random access at any offset derives exactly the blocks it
// needs, with no history. In the eestream idiom, blocks are produced by a
// pipelined engine and consumed on demand: a bounded worker pool derives
// blocks ahead of the read cursor into a bounded cache (backpressure
// instead of lockstep producers), and a slow or stalled group member
// inside one block's exchange never gates byte production (see engine.go
// for the soft reception-report deadline that makes that true).
//
// Contract: bytes are addressed, not consumed. Reading offset o twice
// returns the same bytes twice; one-time-pad consumers own offset
// non-reuse (the session key pool, which consumes the stream
// sequentially and zeroizes on draw, remains the never-reused interface).
package keystream

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ErrClosed is returned by reads on a closed stream.
var ErrClosed = errors.New("keystream: stream closed")

// Source derives the dst-sized block with the given index. Implementations
// must be deterministic in (index) and safe for concurrent calls with
// distinct indices.
type Source func(ctx *BlockContext, index int64, dst []byte) error

// Config parameterizes a Stream.
type Config struct {
	// Terminals, XPerRound, PayloadBytes, Erasure and Seed have their
	// core.Config / service.SessionSpec meanings; together with BlockSize
	// they fully determine the stream's bytes.
	Terminals    int
	XPerRound    int
	PayloadBytes int
	Erasure      float64
	Seed         int64
	// Rotate rotates the leader role across blocks (block b is led by
	// terminal b mod Terminals). Within a block the leader is fixed, so a
	// block's pipeline never hands the transmit role to a member that may
	// be stalled mid-block.
	Rotate bool

	// BlockSize is the stream's framing unit in bytes (default 4096).
	// Rounds run until a block's secret covers BlockSize bytes; the tail
	// beyond it is framing discard, charged to the derivation, so block
	// boundaries stay offset-computable.
	BlockSize int
	// Workers bounds concurrent block derivations (default 4, capped at
	// GOMAXPROCS). Window is how many blocks ahead of the sequential read
	// cursor the workers prefetch (default Workers); CacheBlocks bounds
	// the derived-block cache (default Workers+Window+2). A full cache
	// halts prefetch until a reader consumes — backpressure, not lockstep.
	Workers     int
	Window      int
	CacheBlocks int

	// AckWait bounds how long a block's leader waits for reception
	// reports each round (default 50ms); AckSlack is the extra grace
	// after the first report lands (default 2ms). Members that keep
	// missing the deadline stop being waited for (see memberHealth).
	AckWait  time.Duration
	AckSlack time.Duration
	// Timeout bounds one block derivation end to end (default 30s).
	Timeout time.Duration
	// MaxAbortRounds bounds consecutive secretless rounds before a block
	// derivation gives up (default 64) — the dead-channel escape hatch.
	MaxAbortRounds int

	// Obs, when non-nil, receives the stream's pipeline telemetry
	// (block-derive latency, exchange/compute phase timings, resident
	// block occupancy, cache and member-health counters) as registry
	// instruments. Nil disables — the pipeline then performs no clock
	// reads beyond what it already does.
	Obs *obs.Registry

	// NewBus, when non-nil, builds the broadcast bus for each block
	// (tests wrap the default deterministic bus in an Injector). The
	// default is NewSimBus(cfg, blockSeed). The bus only carries the
	// exchange; erasure outcomes must follow Delivered for the block's
	// bytes to be re-derivable.
	NewBus func(block int64, blockSeed int64) (transport.Bus, error)
	// Source, when non-nil, replaces the protocol engine as the block
	// deriver (tests and benchmarks use cheap GF(2^8) pad expansion; see
	// XOFSource8). The default derives blocks by running protocol rounds.
	Source Source
}

func (c *Config) fill() error {
	if c.BlockSize == 0 {
		c.BlockSize = 4096
	}
	if c.BlockSize < 1 {
		return fmt.Errorf("keystream: BlockSize=%d", c.BlockSize)
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Workers > runtime.GOMAXPROCS(0) {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Window == 0 {
		c.Window = c.Workers
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = c.Workers + c.Window + 2
	}
	if c.CacheBlocks < c.Workers+1 {
		c.CacheBlocks = c.Workers + 1
	}
	if c.AckWait == 0 {
		c.AckWait = 50 * time.Millisecond
	}
	if c.AckSlack == 0 {
		c.AckSlack = 2 * time.Millisecond
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxAbortRounds == 0 {
		c.MaxAbortRounds = 64
	}
	if c.Source == nil {
		// The protocol deriver needs a valid group configuration.
		cc := core.Config{
			Terminals:    c.Terminals,
			XPerRound:    c.XPerRound,
			PayloadBytes: c.PayloadBytes,
			Rounds:       1,
		}
		if err := cc.Validate(); err != nil {
			return err
		}
		if c.Erasure < 0 || c.Erasure >= 1 {
			return fmt.Errorf("keystream: erasure %v outside [0, 1)", c.Erasure)
		}
		// Validate fills the protocol defaults the deriver relies on.
		c.XPerRound = cc.XPerRound
		c.PayloadBytes = cc.PayloadBytes
	}
	return nil
}

// Stats is a point-in-time snapshot of a stream's lifetime counters.
type Stats struct {
	// Blocks counts fully derived blocks; BlockErrors counts derivations
	// that failed (and were forgotten, so a later read retries).
	Blocks      int64 `json:"blocks"`
	BlockErrors int64 `json:"block_errors"`
	// Rounds / Productive / Aborted count protocol rounds the block
	// engine ran (zero when a custom Source is installed).
	Rounds     int64 `json:"rounds"`
	Productive int64 `json:"productive"`
	Aborted    int64 `json:"aborted"`
	// BytesRead counts bytes handed to readers (Read + ReadAt).
	BytesRead int64 `json:"bytes_read"`
	// VerifyOK / VerifyMismatch count per-round terminal agreement checks
	// (a mismatch means a member's live reception diverged from the
	// derivation schedule, e.g. frames shed while it was stalled).
	VerifyOK       int64 `json:"verify_ok"`
	VerifyMismatch int64 `json:"verify_mismatch"`
	// AckTimeouts counts rounds where at least one waited-for member
	// missed the report deadline; SkippedWaits counts rounds that did not
	// wait for a member already marked unresponsive.
	AckTimeouts  int64 `json:"ack_timeouts"`
	SkippedWaits int64 `json:"skipped_waits"`
	// ShedFrames counts frames dropped because a member's inbox
	// overflowed while it was stalled (see simBus).
	ShedFrames int64 `json:"shed_frames"`
	// CacheHits / CacheMisses classify block acquisitions: a hit found
	// the block already derived; a miss created or waited for it.
	// CacheEvictions counts idle derived blocks dropped by the LRU to
	// make room.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	// StridePrefetches counts blocks the prefetcher claimed because the
	// stride detector saw a repeating non-sequential ReadAt pattern.
	StridePrefetches int64 `json:"stride_prefetches"`
	// HealthSkips counts report waits skipped because the member was
	// marked unresponsive; HealthProbes counts the periodic liveness
	// re-probes of such members (see memberHealth).
	HealthSkips  int64 `json:"health_skips"`
	HealthProbes int64 `json:"health_probes"`
}

// streamInstruments are the registry handles a stream observes into.
// The zero value (no registry plumbed) is fully usable: every obs
// instrument is nil-receiver safe, and timing sites skip their clock
// reads when the relevant histogram is nil.
type streamInstruments struct {
	blockLat    *obs.Histogram
	exchangeLat *obs.Histogram
	computeLat  *obs.Histogram
	resident    *obs.Gauge
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheEvicts *obs.Counter
}

func newStreamInstruments(r *obs.Registry) streamInstruments {
	return streamInstruments{
		blockLat: r.Histogram("thinaird_keystream_block_derive_seconds",
			"Wall time to derive one keystream block.", obs.LatencyBuckets),
		exchangeLat: r.Histogram("thinaird_keystream_exchange_seconds",
			"Wall time of one pipelined round's x-packet exchange phase.", obs.LatencyBuckets),
		computeLat: r.Histogram("thinaird_keystream_compute_seconds",
			"Wall time of one pipelined round's plan/eliminate/announce phase.", obs.LatencyBuckets),
		resident: r.Gauge("thinaird_keystream_blocks_resident",
			"Blocks currently resident in the stream cache (pipeline occupancy)."),
		cacheHits: r.Counter("thinaird_keystream_cache_hits_total",
			"Block acquisitions that found the block already derived."),
		cacheMisses: r.Counter("thinaird_keystream_cache_misses_total",
			"Block acquisitions that created or waited for a derivation."),
		cacheEvicts: r.Counter("thinaird_keystream_cache_evictions_total",
			"Idle derived blocks evicted by the LRU to make room."),
	}
}

// blockState tracks one block through the cache.
type blockState struct {
	idx     int64
	running bool
	data    []byte // non-nil once derived
	err     error
	demand  int   // readers waiting on it
	lastUse int64 // cache clock, for LRU eviction
}

// Stream is a pipelined, randomly addressable keystream. It implements
// io.Reader (a sequential cursor), io.ReaderAt, and io.Closer. All
// methods are safe for concurrent use.
type Stream struct {
	cfg Config

	mu     sync.Mutex
	cond   *sync.Cond
	blocks map[int64]*blockState
	tick   int64
	pos    int64 // sequential read cursor (bytes)
	hint   int64 // first block after the most recent acquisition (blocks)
	closed bool

	// Stride detector state (guarded by mu): strideLast is the first
	// block of the most recent ReadAt, strideDelta the last inter-call
	// jump, strideHits how many times in a row that jump repeated. Two
	// repeats of a jump that is neither a re-read (0) nor sequential (1)
	// switch prefetch from the contiguous hint window to the strided
	// lattice strideLast + k·strideDelta — the access pattern of an OTP
	// consumer padding every Nth record, which the contiguous window
	// never anticipates.
	strideLast  int64
	strideDelta int64
	strideHits  int

	readMu sync.Mutex // serializes sequential Reads (cursor integrity)

	wg     sync.WaitGroup
	health *memberHealth
	stats  Stats       // cache-side counters, guarded by mu
	es     engineStats // derivation-side counters, atomic
	ins    streamInstruments
}

// New starts a stream: cfg.Workers derivation workers begin prefetching
// block 0 onward immediately. Close releases them.
func New(cfg Config) (*Stream, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Stream{
		cfg:    cfg,
		blocks: make(map[int64]*blockState),
		health: newMemberHealth(cfg.Terminals),
	}
	if cfg.Obs != nil {
		s.ins = newStreamInstruments(cfg.Obs)
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// BlockSize returns the stream's framing unit.
func (s *Stream) BlockSize() int { return s.cfg.BlockSize }

// Stats snapshots the stream's counters.
func (s *Stream) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.Rounds = s.es.rounds.Load()
	st.Productive = s.es.productive.Load()
	st.Aborted = s.es.aborted.Load()
	st.VerifyOK = s.es.verifyOK.Load()
	st.VerifyMismatch = s.es.verifyMismatch.Load()
	st.AckTimeouts = s.es.ackTimeouts.Load()
	st.SkippedWaits = s.es.skippedWaits.Load()
	st.ShedFrames = s.es.shed.Load()
	st.HealthSkips, st.HealthProbes = s.health.totals()
	return st
}

// worker derives blocks until the stream closes: demanded blocks first
// (lowest index — a waiting reader), then prefetch within the window
// ahead of the sequential cursor, bounded by the cache budget.
func (s *Stream) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return
		}
		bs := s.pickNext()
		if bs == nil {
			s.cond.Wait()
			continue
		}
		bs.running = true
		s.mu.Unlock()

		data := make([]byte, s.cfg.BlockSize)
		timed := s.ins.blockLat != nil
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		err := s.derive(bs.idx, data)
		if timed {
			s.ins.blockLat.ObserveSince(t0)
		}

		s.mu.Lock()
		bs.running = false
		if s.closed {
			zero(data)
			s.mu.Unlock()
			return
		}
		if err != nil {
			s.stats.BlockErrors++
			bs.err = err
			// Hand the error to the readers currently waiting, then forget
			// the block so the next acquisition re-derives it (transient
			// stalls must not poison an offset forever).
			delete(s.blocks, bs.idx)
			s.ins.resident.Set(float64(len(s.blocks)))
		} else {
			s.stats.Blocks++
			bs.data = data
			bs.lastUse = s.nextTick()
		}
		s.cond.Broadcast()
	}
}

// pickNext chooses the next block to derive. Caller holds mu.
func (s *Stream) pickNext() *blockState {
	// Demanded blocks first: a reader is blocked on them.
	var best *blockState
	for _, bs := range s.blocks {
		if bs.demand > 0 && !bs.running && bs.data == nil && bs.err == nil {
			if best == nil || bs.idx < best.idx {
				best = bs
			}
		}
	}
	if best != nil {
		return best
	}
	// With an established stride, prefetch along the strided lattice
	// instead of the contiguous hint window — the window would fill the
	// cache with blocks a strided reader is about to jump over.
	if s.strideActive() {
		for k := int64(1); k <= int64(s.cfg.Window); k++ {
			idx := s.strideLast + k*s.strideDelta
			if idx < 0 {
				break // backward stride ran off the stream's start
			}
			if _, ok := s.blocks[idx]; ok {
				continue
			}
			if !s.makeRoom() {
				return nil
			}
			s.stats.StridePrefetches++
			return s.claim(idx)
		}
	} else {
		// Prefetch within the window, respecting the cache budget. The hint
		// cursor (where the most recent reader actually is — random-access
		// readers included) is the better bet; the sequential cursor's
		// window keeps a drained-by-Read consumer pipelined when no one
		// else reads.
		for idx := s.hint; idx < s.hint+int64(s.cfg.Window); idx++ {
			if _, ok := s.blocks[idx]; ok {
				continue
			}
			if !s.makeRoom() {
				return nil // cache full of live blocks: backpressure
			}
			return s.claim(idx)
		}
	}
	// The sequential cursor's window applies either way: the session pool
	// drains the stream through Read and must stay pipelined even while a
	// random-access reader drives the stride or hint state elsewhere.
	base := s.pos / int64(s.cfg.BlockSize)
	for idx := base; idx < base+int64(s.cfg.Window); idx++ {
		if _, ok := s.blocks[idx]; ok {
			continue
		}
		if !s.makeRoom() {
			return nil
		}
		return s.claim(idx)
	}
	return nil
}

// claim registers an empty block state for idx. Caller holds mu and has
// already made room.
func (s *Stream) claim(idx int64) *blockState {
	bs := &blockState{idx: idx}
	s.blocks[idx] = bs
	s.ins.resident.Set(float64(len(s.blocks)))
	return bs
}

// strideMinHits is how many consecutive repeats of the same jump
// establish a stride. Caller of strideActive holds mu.
const strideMinHits = 2

func (s *Stream) strideActive() bool {
	return s.strideHits >= strideMinHits && s.strideDelta != 0 && s.strideDelta != 1
}

// noteStride feeds the detector the first block index of one ReadAt
// call. Re-reads (delta 0) and sequential continuation (delta 1) are
// already served by the hint window; any other jump that repeats
// strideMinHits times in a row flips prefetch to the strided lattice.
// Caller holds mu.
func (s *Stream) noteStride(idx int64) {
	delta := idx - s.strideLast
	s.strideLast = idx
	if delta == s.strideDelta && delta != 0 && delta != 1 {
		s.strideHits++
	} else {
		s.strideDelta = delta
		s.strideHits = 0
	}
}

// makeRoom evicts the least-recently-used idle derived block if the cache
// is at capacity. Returns false when nothing can be evicted. Caller holds
// mu.
func (s *Stream) makeRoom() bool {
	if len(s.blocks) < s.cfg.CacheBlocks {
		return true
	}
	var victim *blockState
	for _, bs := range s.blocks {
		if bs.data == nil || bs.demand > 0 || bs.running {
			continue
		}
		if victim == nil || bs.lastUse < victim.lastUse {
			victim = bs
		}
	}
	if victim == nil {
		return false
	}
	zero(victim.data)
	delete(s.blocks, victim.idx)
	s.stats.CacheEvictions++
	s.ins.cacheEvicts.Inc()
	s.ins.resident.Set(float64(len(s.blocks)))
	return true
}

func (s *Stream) nextTick() int64 {
	s.tick++
	return s.tick
}

// acquire blocks until block idx is derived (or fails, or the stream
// closes) and returns its bytes. The caller must release() when done
// copying.
func (s *Stream) acquire(idx int64) (*blockState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	classified := false // hit/miss is judged on the first look only
	for {
		if s.closed {
			return nil, ErrClosed
		}
		bs, ok := s.blocks[idx]
		if !classified {
			classified = true
			if ok && bs.data != nil {
				s.stats.CacheHits++
				s.ins.cacheHits.Inc()
			} else {
				s.stats.CacheMisses++
				s.ins.cacheMisses.Inc()
			}
		}
		if !ok {
			if !s.makeRoom() {
				// Every cache slot is a live (demanded or running) block.
				// Wait for one to free rather than overcommitting memory.
				s.cond.Wait()
				continue
			}
			bs = &blockState{idx: idx}
			s.blocks[idx] = bs
			s.ins.resident.Set(float64(len(s.blocks)))
		}
		if s.hint != idx+1 {
			// Move the prefetch hint to where this reader is so the workers
			// pipeline ahead of random-access readers too, and wake an idle
			// worker to start on the new window.
			s.hint = idx + 1
			s.cond.Broadcast()
		}
		if bs.err != nil {
			return nil, bs.err
		}
		if bs.data != nil {
			bs.demand++
			bs.lastUse = s.nextTick()
			return bs, nil
		}
		bs.demand++
		s.cond.Broadcast() // a worker may be idle
		s.cond.Wait()
		bs.demand--
		// Loop: re-look the block up — a failed derivation deletes it.
		if bs.err != nil {
			return nil, bs.err
		}
	}
}

func (s *Stream) release(bs *blockState) {
	s.mu.Lock()
	bs.demand--
	if s.closed && bs.demand == 0 {
		// Close skipped this block because a reader was still copying from
		// it; the last release zeroizes on its behalf.
		zero(bs.data)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// ReadAt implements io.ReaderAt: it fills p from stream offset off,
// deriving exactly the blocks the range covers. The stream is unbounded,
// so ReadAt never returns io.EOF for in-range offsets; short reads only
// happen on error.
func (s *Stream) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("keystream: negative offset %d", off)
	}
	bsz := int64(s.cfg.BlockSize)
	s.mu.Lock()
	s.noteStride(off / bsz)
	if s.strideActive() {
		s.cond.Broadcast() // wake idle workers onto the strided lattice
	}
	s.mu.Unlock()
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) / bsz
		in := int((off + int64(n)) % bsz)
		bs, err := s.acquire(idx)
		if err != nil {
			return n, err
		}
		c := copy(p[n:], bs.data[in:])
		s.release(bs)
		n += c
	}
	s.mu.Lock()
	s.stats.BytesRead += int64(n)
	s.mu.Unlock()
	return n, nil
}

// Read implements io.Reader over the stream's sequential cursor. It
// returns at most one block per call (callers needing exact lengths use
// io.ReadFull, or ReadAt).
func (s *Stream) Read(p []byte) (int, error) {
	s.readMu.Lock()
	defer s.readMu.Unlock()
	s.mu.Lock()
	pos := s.pos
	s.mu.Unlock()
	bsz := int64(s.cfg.BlockSize)
	// Clamp to the current block so the cursor advances block by block —
	// each Read wakes the prefetchers with a window that moved.
	max := int(bsz - pos%bsz)
	if len(p) > max {
		p = p[:max]
	}
	n, err := s.ReadAt(p, pos)
	s.mu.Lock()
	s.pos = pos + int64(n)
	s.mu.Unlock()
	s.cond.Broadcast() // window moved: wake prefetchers
	return n, err
}

// RangeReader returns an io.Reader over [off, off+n): the chunked HTTP
// endpoint's backing. Reading it derives blocks on demand.
func (s *Stream) RangeReader(off, n int64) io.Reader {
	return io.NewSectionReader(s, off, n)
}

// Close stops the workers, wakes every blocked reader with ErrClosed and
// zeroizes the cached blocks. Safe to call multiple times.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for idx, bs := range s.blocks {
		// A reader with the block acquired (demand > 0) copies from
		// bs.data outside mu; zeroizing under it would hand that reader
		// silently zeroed key material with a nil error. Leave held blocks
		// to release(), which zeroizes when the last reader lets go.
		if bs.demand == 0 {
			zero(bs.data)
		}
		delete(s.blocks, idx)
	}
	s.ins.resident.Set(float64(len(s.blocks)))
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
