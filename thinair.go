// Package thinair is a from-scratch reproduction of "Creating Shared
// Secrets out of Thin Air" (Safaka, Fragouli, Argyraki, Diggavi —
// HotNets-XI, 2012): a secret-agreement protocol that lets a group of
// wireless terminals build shared secrets whose secrecy rests on the
// eavesdropper's limited network presence rather than on her computational
// limitations.
//
// The package is a facade over the implementation in internal/…:
//
//   - the protocol engine (Phase 1 pair-wise wiretap extraction, Phase 2
//     group redistribution + privacy amplification, leader rotation,
//     Eve-bound estimators),
//   - the simulated broadcast erasure substrate and the paper's 14 m²
//     3×3-cell testbed with rotating artificial interference,
//   - a concurrent runtime that runs the protocol as goroutine-per-node
//     over in-process or UDP-loopback broadcast buses, and
//   - the evaluation harness regenerating the paper's Figures 1 and 2 and
//     headline numbers.
//
// # Quick start
//
//	res, err := thinair.Simulate(thinair.SimOptions{
//		Terminals: 3,
//		Erasure:   0.4,
//		Seed:      1,
//	})
//	// res.Secret is shared by all terminals; res.Reliability tells how
//	// much of it the eavesdropper could have inferred (1 = nothing).
//
// See the examples/ directory for runnable programs, including the
// concurrent runtime, key refresh, multi-antenna adversaries and the
// active-Eve authentication extension.
package thinair

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/keypool"
	"repro/internal/radio"
	"repro/internal/service"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/unicast"
)

// Re-exported protocol configuration and results.
type (
	// Config is the protocol session configuration (see core.Config).
	Config = core.Config
	// SessionResult is a protocol session outcome with the paper's
	// efficiency and reliability metrics.
	SessionResult = core.SessionResult
	// RoundInfo describes one round of a session.
	RoundInfo = core.RoundInfo
	// Estimator lower-bounds what Eve missed (§3.3 of the paper).
	Estimator = core.Estimator
	// Pooling groups x-packets into budgetable pools.
	Pooling = core.Pooling
)

// Re-exported estimators and pooling policies.
type (
	// Oracle budgets with Eve's true misses (analysis only).
	Oracle = core.Oracle
	// FixedDelta assumes the interference guarantees Eve a minimum
	// per-packet miss probability.
	FixedDelta = core.FixedDelta
	// LeaveOneOut is the paper's pretend-each-terminal-is-Eve estimator.
	LeaveOneOut = core.LeaveOneOut
	// KSubset secures against a k-antenna Eve.
	KSubset = core.KSubset
	// ExactPooling uses raw reception classes.
	ExactPooling = core.ExactPooling
	// BalancedPooling re-aggregates fragmented classes (default).
	BalancedPooling = core.BalancedPooling
)

// Re-exported testbed types.
type (
	// Placement positions Eve and the terminals on the 3×3 cell grid.
	Placement = testbed.Placement
	// Cell is a logical testbed cell (0..8).
	Cell = testbed.Cell
	// Channel holds the physical-layer parameters of the simulated
	// testbed.
	Channel = testbed.Channel
	// Experiment is one testbed placement run.
	Experiment = testbed.Experiment
)

// KeyChain is the active-adversary authentication chain (bootstrap +
// per-round ratchet).
type KeyChain = auth.KeyChain

// Tracer receives structured protocol events; TraceLog collects them
// (see internal/trace).
type (
	Tracer   = trace.Tracer
	TraceLog = trace.Log
)

// NewTraceLog returns an in-memory event collector usable as a Tracer.
func NewTraceLog() *TraceLog { return trace.NewLog() }

// KeyPool banks session secrets and dispenses never-reused one-time keys
// (see internal/keypool).
type KeyPool = keypool.Pool

// NewKeyPool returns an empty key pool.
func NewKeyPool() *KeyPool { return keypool.New() }

// NewKeyPoolWithRefill returns a pool that calls refill (typically a
// protocol session) whenever it runs low.
func NewKeyPoolWithRefill(refill func() ([]byte, error), lowWater int) *KeyPool {
	return keypool.NewWithRefill(refill, lowWater)
}

// NewKeyChain derives a chain from an out-of-band bootstrap secret.
func NewKeyChain(bootstrap []byte) *KeyChain { return auth.NewKeyChain(bootstrap) }

// DefaultChannel returns the calibrated testbed channel parameters.
func DefaultChannel() Channel { return testbed.DefaultChannel() }

// Reliability converts (secret dims, dims unknown to Eve) into the paper's
// reliability metric r: Eve guesses each secret bit with probability 2^-r.
func Reliability(secretDims, unknownDims int) float64 {
	return core.Reliability(secretDims, unknownDims)
}

// SimOptions configures a quick simulation on a symmetric broadcast
// erasure channel (every link, Eve's included, loses packets independently
// with probability Erasure) — the setting of the paper's Figure 1.
type SimOptions struct {
	// Terminals is the group size n >= 2.
	Terminals int
	// Erasure is the per-link packet loss probability in [0, 1).
	Erasure float64
	// XPerRound, PayloadBytes, Rounds, Rotate, Estimator, Pooling override
	// protocol defaults (see core.Config).
	XPerRound    int
	PayloadBytes int
	Rounds       int
	Rotate       bool
	Estimator    Estimator
	Pooling      Pooling
	// EveAntennas is the number of independent receive antennas Eve has
	// (default 1).
	EveAntennas int
	Seed        int64
	// Tracer, when non-nil, receives structured per-round events.
	Tracer Tracer
}

// Simulate runs one protocol session on a symmetric erasure channel and
// returns the shared secret plus the evaluation metrics.
func Simulate(opt SimOptions) (*SessionResult, error) {
	if opt.Erasure < 0 || opt.Erasure >= 1 {
		return nil, fmt.Errorf("thinair: erasure %v outside [0, 1)", opt.Erasure)
	}
	if opt.XPerRound == 0 {
		opt.XPerRound = 90
	}
	antennas := opt.EveAntennas
	if antennas <= 0 {
		antennas = 1
	}
	cfg := Config{
		Terminals:    opt.Terminals,
		XPerRound:    opt.XPerRound,
		PayloadBytes: opt.PayloadBytes,
		Rounds:       opt.Rounds,
		Rotate:       opt.Rotate,
		Estimator:    opt.Estimator,
		Pooling:      opt.Pooling,
		Seed:         opt.Seed,
		Tracer:       opt.Tracer,
	}
	med := radio.NewMedium(radio.Uniform{P: opt.Erasure}, opt.Terminals+antennas, opt.Seed+1)
	eves := make([]radio.NodeID, antennas)
	for i := range eves {
		eves[i] = radio.NodeID(opt.Terminals + i)
	}
	return core.RunSession(cfg, med, eves)
}

// RunExperiment executes one testbed placement (the unit of the paper's
// §4 evaluation): Eve in one cell, terminals in others, rotating
// artificial interference.
func RunExperiment(ex *Experiment) (*SessionResult, error) { return ex.Run() }

// PairwiseResult is the outcome of a Phase-1-only session (§3.1): one
// pair-wise secret per terminal, each with its own secrecy certificate.
type PairwiseResult = core.PairwiseResult

// SimulatePairwise runs Phase 1 only on a symmetric erasure channel:
// terminal 0 leads, and every other terminal ends up with a pair-wise
// secret shared with the leader.
func SimulatePairwise(opt SimOptions) (*PairwiseResult, error) {
	if opt.Erasure < 0 || opt.Erasure >= 1 {
		return nil, fmt.Errorf("thinair: erasure %v outside [0, 1)", opt.Erasure)
	}
	if opt.XPerRound == 0 {
		opt.XPerRound = 90
	}
	antennas := opt.EveAntennas
	if antennas <= 0 {
		antennas = 1
	}
	cfg := Config{
		Terminals:    opt.Terminals,
		XPerRound:    opt.XPerRound,
		PayloadBytes: opt.PayloadBytes,
		Estimator:    opt.Estimator,
		Pooling:      opt.Pooling,
		Seed:         opt.Seed,
	}
	med := radio.NewMedium(radio.Uniform{P: opt.Erasure}, opt.Terminals+antennas, opt.Seed+1)
	eves := make([]radio.NodeID, antennas)
	for i := range eves {
		eves[i] = radio.NodeID(opt.Terminals + i)
	}
	return core.RunPairwiseRound(cfg, med, eves)
}

// SimulateUnicastBaseline runs the §3.2 unicast baseline (pair-wise
// secrets + one-time-pad unicast of a fresh group key) with the same
// options as Simulate, for direct comparison.
func SimulateUnicastBaseline(opt SimOptions) (*SessionResult, error) {
	if opt.Erasure < 0 || opt.Erasure >= 1 {
		return nil, fmt.Errorf("thinair: erasure %v outside [0, 1)", opt.Erasure)
	}
	if opt.XPerRound == 0 {
		opt.XPerRound = 90
	}
	antennas := opt.EveAntennas
	if antennas <= 0 {
		antennas = 1
	}
	cfg := Config{
		Terminals:    opt.Terminals,
		XPerRound:    opt.XPerRound,
		PayloadBytes: opt.PayloadBytes,
		Rounds:       opt.Rounds,
		Rotate:       opt.Rotate,
		Estimator:    opt.Estimator,
		Pooling:      opt.Pooling,
		Seed:         opt.Seed,
	}
	med := radio.NewMedium(radio.Uniform{P: opt.Erasure}, opt.Terminals+antennas, opt.Seed+1)
	eves := make([]radio.NodeID, antennas)
	for i := range eves {
		eves[i] = radio.NodeID(opt.Terminals + i)
	}
	return unicast.RunSession(cfg, med, eves)
}

// EnumeratePlacements lists every way to place Eve and n terminals on the
// grid, as the paper's "one experiment for each possible positioning".
func EnumeratePlacements(n int) []Placement { return testbed.EnumeratePlacements(n) }

// Concurrent runtime re-exports: run the protocol as goroutine-per-node
// over a broadcast bus (in-process channels or loopback UDP).
type (
	// Bus is a broadcast domain with erasures on the data plane.
	Bus = transport.Bus
	// Endpoint is one node's attachment to a Bus.
	Endpoint = transport.Endpoint
	// NodeConfig parameterizes one node of the concurrent runtime.
	NodeConfig = transport.NodeConfig
	// NodeResult is one node's session outcome.
	NodeResult = transport.NodeResult
	// Observer is a wire-level eavesdropper for the concurrent runtime.
	Observer = transport.Observer
)

// NewChanBus creates an in-process broadcast bus with the given symmetric
// erasure probability on the data plane.
func NewChanBus(erasure float64, seed int64) Bus {
	return transport.NewChanBus(radio.Uniform{P: erasure}, seed, 10)
}

// NewUDPBus creates a loopback-UDP broadcast bus (hub + ARQ control
// plane) with the given symmetric erasure probability on the data plane.
func NewUDPBus(erasure float64, seed int64) (Bus, error) {
	return transport.NewUDPBus(radio.Uniform{P: erasure}, seed, 10)
}

// NewObserver creates a wire-level eavesdropper for a session.
func NewObserver(session uint32) *Observer { return transport.NewObserver(session) }

// Service-layer re-exports: the long-lived daemon that runs many
// concurrent group sessions with background keypool refresh and a
// metrics/HTTP surface (see internal/service and cmd/thinaird).
type (
	// Service is the multi-session key-agreement daemon.
	Service = service.Service
	// ServiceConfig bounds concurrent sessions, queueing and drain time.
	ServiceConfig = service.Config
	// SessionSpec describes one long-lived group session.
	SessionSpec = service.SessionSpec
	// ServiceSession is one running group with its key pool.
	ServiceSession = service.Session
	// SessionMetrics / ServiceMetrics are telemetry snapshots.
	SessionMetrics = service.SessionMetrics
	ServiceMetrics = service.ServiceMetrics
)

// NewService starts a daemon; call Shutdown to drain and zeroize it.
// Service.Handler exposes /metrics, /healthz and the /v1/sessions API.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Cluster-tier re-exports: the multi-process layer where a coordinator
// owns the session registry and supervises worker processes that each
// host sessions over UDP buses (see internal/cluster and the
// `thinaird coordinator` / `thinaird worker` subcommands).
type (
	// Coordinator owns the cluster registry, placement and supervision.
	Coordinator = cluster.Coordinator
	// ClusterConfig sizes the tier and its heartbeat/restart policy.
	ClusterConfig = cluster.Config
	// ClusterWorker hosts a bounded set of cluster sessions.
	ClusterWorker = cluster.Worker
	// ClusterSessionInfo is the registry's view of one session.
	ClusterSessionInfo = cluster.SessionInfo
)

// NewCoordinator starts the cluster tier; call Shutdown to drain every
// worker and zeroize every pool tier-wide. With a nil Spawn the workers
// are hosted in-process (cluster.InProcess); pass a cluster.ExecSpawner
// to run them as separate OS processes.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) { return cluster.New(cfg) }

// Client is the unified key-access API: Draw, DrawN, StreamRange and
// ReaderAt against a session id, identical across the three transports —
// daemon HTTP, coordinator HTTP and the gate frame protocol. All
// implementations decode the shared /v1 error envelope to the same typed
// errors, so errors.Is works the same way regardless of tier.
type Client = client.Client

// Typed errors every Client implementation can return; each corresponds
// 1:1 to an error code slug of the /v1 envelope (see the README's error
// code table).
var (
	ErrNotFound    = client.ErrNotFound
	ErrOrphaned    = client.ErrOrphaned
	ErrDraining    = client.ErrDraining
	ErrDuplicate   = client.ErrDuplicate
	ErrUnreachable = client.ErrUnreachable
	ErrShutdown    = client.ErrShutdown
	ErrSaturated   = client.ErrSaturated
	ErrExhausted   = client.ErrExhausted
	ErrClosed      = client.ErrClosed
	ErrFailed      = client.ErrFailed
	ErrBadRequest  = client.ErrBadRequest
	ErrInternal    = client.ErrInternal
)

// NewHTTPClient returns a Client talking /v1 over HTTP to a daemon or a
// coordinator at base (e.g. "http://127.0.0.1:9309") — both serve the
// same surface.
func NewHTTPClient(base string) Client { return client.NewHTTP(base) }

// DialGate connects a persistent frame-protocol Client to a gate's TCP
// listener (see the `thinaird gate` subcommand).
func DialGate(addr string) (Client, error) { return gate.Dial(addr) }

// DialGateWS is DialGate over a WebSocket upgrade (ws://host/path).
func DialGateWS(url string) (Client, error) { return gate.DialWS(url) }

// ErrInterrupted marks a draw cut by a connection loss on a
// reconnecting gate client. The draw is NEVER replayed — the gate may
// have consumed the pool bytes before the cut — so the caller decides
// whether to re-issue. Stream ranges don't need it: they resume from
// the written offset transparently.
var ErrInterrupted = gate.ErrInterrupted

// DialGateReconnect is DialGate returning a self-healing client: when
// the connection dies (gate restart, kick, network cut) the next call
// re-dials with jittered exponential backoff. Stream ranges resume from
// the written offset so each byte is delivered exactly once; draws are
// never replayed (ErrInterrupted).
func DialGateReconnect(addr string) (Client, error) { return gate.DialReconnect(addr) }

// DialGateReconnectWS is DialGateReconnect over a WebSocket upgrade.
func DialGateReconnectWS(url string) (Client, error) { return gate.DialReconnectWS(url) }

// Gate-tier re-exports: the persistent-connection front tier that serves
// the Client API over multiplexed frames and streams ranges directly
// from owning workers (see internal/gate and `thinaird gate`).
type (
	// Gate accepts persistent frame-protocol connections.
	Gate = gate.Gate
	// GateConfig parameterizes a Gate.
	GateConfig = gate.Config
)

// NewGate builds a Gate serving the given backend; wire one with
// gate.ServiceBackend (single daemon) or gate.ClusterBackend (cluster).
func NewGate(cfg GateConfig) *Gate { return gate.New(cfg) }
